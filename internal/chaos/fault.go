package chaos

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"crossinv/internal/runtime/adaptive"
	"crossinv/internal/runtime/domore"
	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/runtime/trace"
	"crossinv/internal/workloads"
	"crossinv/internal/workloads/epochal"
)

// FaultPlan selects which faults to inject into a differential run. Every
// fault preserves sequential semantics — the engines are required to
// recover — so a run with all faults enabled must still match the oracle;
// what the faults change is *coverage*: recovery paths that a clean run
// exercises almost never (rollback and barrier re-execution, §4.2.2;
// queue-full producer backoff, §3.2.3; worker-fault abort) run on every
// pass.
type FaultPlan struct {
	// Seed steers the deterministic fault-site choices (which epochs
	// conflict, which task panics, which events delay).
	Seed uint64
	// QueueFull shrinks every engine queue to capacity 1, forcing the
	// producer-side backoff loops to run constantly.
	QueueFull bool
	// DelayLanes perturbs thread schedules by yielding inside the trace
	// hook at iteration/task starts. Effective only on traced runs (the
	// hook hangs off the recorder).
	DelayLanes bool
	// SigConflict records an extra sentinel write in the signatures of
	// every task of two adjacent epochs. The sentinel address exists in no
	// real access set, so memory is untouched — but whenever tasks of the
	// two epochs overlap in time, the checker detects a conflict and the
	// segment takes the full rollback + re-execution path.
	SigConflict bool
	// Panic makes one chosen task panic (once per run) during speculative
	// execution — the §4.2.2 worker-fault trigger. The engine must flag
	// misspeculation, roll back, and re-execute non-speculatively (where
	// the injection, keyed on a live signature, no longer fires).
	Panic bool
	// Timeout sets a tiny SpecTimeout so speculative segments routinely
	// abort via the user-defined timeout of §4.2.2.
	Timeout bool
	// TornState simulates torn/failed checkpoints: every Restore first
	// scribbles the whole live state (as if speculative writes had torn
	// it arbitrarily) before applying the snapshot, so recovery is proven
	// to repair arbitrary corruption; every Snapshot is probed for
	// aliasing (a snapshot that shares memory with the live state would
	// be torn by later speculative writes).
	TornState bool
	// TornDelta tears one tracked speculative write: the first speculative
	// task records a victim cell in its signature (record-before-write, so
	// the cell lands in the engine's write log), scribbles the cell, and
	// panics. The incremental-checkpoint rollback must repair the cell
	// from its base image — a delta restore that misses logged cells
	// diverges from the oracle. Unlike TornState this fault is compatible
	// with (and exists to exercise) the write-set delta path; on workloads
	// forced onto full snapshots it is repaired by the full restore.
	TornDelta bool
	// ShardSkew delays one seed-chosen scheduler lane of the sharded DOMORE
	// scheduler (domore.RunSharded): the trace hook yields repeatedly at
	// that lane's shard-chunk completion events, so the driver's chunk
	// barrier always waits on a straggler and lane-merge runs with maximal
	// skew between shards. Effective only on traced domore-sharded runs
	// (the hook hangs off the recorder, like DelayLanes).
	ShardSkew bool
}

// AllFaults returns a plan with every fault kind enabled.
func AllFaults(seed uint64) FaultPlan {
	return FaultPlan{
		Seed: seed, QueueFull: true, DelayLanes: true,
		SigConflict: true, Panic: true, Timeout: true, TornState: true,
		TornDelta: true, ShardSkew: true,
	}
}

// ParseFaults parses "all", "none", or a comma-separated subset
// (queue-full, delay, sig-conflict, panic, timeout, torn-state,
// torn-delta, shard-skew).
func ParseFaults(s string, seed uint64) (FaultPlan, error) {
	switch s {
	case "", "none":
		return FaultPlan{Seed: seed}, nil
	case "all":
		return AllFaults(seed), nil
	}
	p := FaultPlan{Seed: seed}
	for _, f := range strings.Split(s, ",") {
		switch strings.TrimSpace(f) {
		case "queue-full":
			p.QueueFull = true
		case "delay":
			p.DelayLanes = true
		case "sig-conflict":
			p.SigConflict = true
		case "panic":
			p.Panic = true
		case "timeout":
			p.Timeout = true
		case "torn-state":
			p.TornState = true
		case "torn-delta":
			p.TornDelta = true
		case "shard-skew":
			p.ShardSkew = true
		default:
			return p, fmt.Errorf("chaos: unknown fault %q", f)
		}
	}
	return p, nil
}

// Active reports whether any fault is enabled.
func (p FaultPlan) Active() bool {
	return p.QueueFull || p.DelayLanes || p.SigConflict || p.Panic || p.Timeout || p.TornState || p.TornDelta || p.ShardSkew
}

// String lists the enabled faults.
func (p FaultPlan) String() string {
	var on []string
	add := func(b bool, n string) {
		if b {
			on = append(on, n)
		}
	}
	add(p.QueueFull, "queue-full")
	add(p.DelayLanes, "delay")
	add(p.SigConflict, "sig-conflict")
	add(p.Panic, "panic")
	add(p.Timeout, "timeout")
	add(p.TornState, "torn-state")
	add(p.TornDelta, "torn-delta")
	add(p.ShardSkew, "shard-skew")
	if len(on) == 0 {
		return "none"
	}
	return strings.Join(on, ",")
}

// Domore applies the plan's engine-configuration faults to DOMORE options.
func (p FaultPlan) Domore(o domore.Options) domore.Options {
	if p.QueueFull {
		o.QueueCap = 1
	}
	return o
}

// Spec applies the plan's engine-configuration faults to a SPECCROSS config.
func (p FaultPlan) Spec(c speccross.Config) speccross.Config {
	if p.QueueFull {
		c.QueueCap = 1
	}
	if p.Timeout {
		c.SpecTimeout = 200 * time.Microsecond
	}
	return c
}

// Hook returns the trace hook implementing the DelayLanes and ShardSkew
// faults, or nil. Installed on a run's recorder, DelayLanes yields the
// emitting thread at a seed-chosen subset of iteration/task starts and
// stall points — cheap, deterministic-by-count schedule perturbation at
// the engines' existing trace points. ShardSkew instead targets one
// scheduler lane of the sharded DOMORE scheduler, yielding hard at every
// one of its shard-chunk completions so the lane is a permanent straggler.
func (p FaultPlan) Hook() trace.Hook {
	if !p.DelayLanes && !p.ShardSkew {
		return nil
	}
	var ctr atomic.Uint64
	seed := p.Seed
	delay := p.DelayLanes
	skewLane := int64(-1)
	if p.ShardSkew {
		skewLane = int64(seed % shardLanes)
	}
	return func(lane int32, k trace.Kind, a, b, c int64) {
		if k == trace.KindShardChunk {
			if a == skewLane {
				for i := 0; i < 8; i++ {
					runtime.Gosched()
				}
			}
			return
		}
		if !delay {
			return
		}
		switch k {
		case trace.KindIterStart, trace.KindTaskStart, trace.KindSchedule, trace.KindStallEnd:
		default:
			return
		}
		h := workloads.Mix64(ctr.Add(1) ^ seed ^ uint64(uint32(lane))<<32)
		if h%4 == 0 {
			for i := uint64(0); i <= h>>8%3; i++ {
				runtime.Gosched()
			}
		}
	}
}

// sentinelAddr is the injected-conflict address: far outside any real
// state index, so it exists only inside signatures.
const sentinelAddr = uint64(1) << 40

// injector wraps a case's kernel (or a mutated view of it), implementing
// the workload-level faults. It satisfies adaptive.Workload, so the same
// wrapper feeds all four engines.
type injector struct {
	inner adaptive.Workload
	k     *epochal.Kernel
	plan  FaultPlan

	conflictA, conflictB  int // adjacent epochs carrying the sentinel write
	panicEpoch, panicTask int
	panicLeft             atomic.Int32
	tornLeft              atomic.Int32 // TornDelta once-latch

	errMsg atomic.Pointer[string]
}

// deltaInjector is an injector over a delta-capable inner workload: it
// forwards the speccross.DeltaWorkload view, so the incremental-checkpoint
// path stays engaged under fault injection (which is what TornDelta
// exercises). TornState runs deliberately stay on the plain injector —
// its whole-state Restore scribble is only repairable by a full-snapshot
// restore, so hiding the delta view there preserves that coverage.
type deltaInjector struct {
	*injector
	dw speccross.DeltaWorkload
}

func (d *deltaInjector) StateLen() int                       { return d.dw.StateLen() }
func (d *deltaInjector) ReadCell(c uint64) int64             { return d.dw.ReadCell(c) }
func (d *deltaInjector) WriteCell(c uint64, v int64)         { d.dw.WriteCell(c, v) }
func (d *deltaInjector) AddrCells(a uint64) (uint64, uint64) { return d.dw.AddrCells(a) }

// Wrap builds the fault-injecting workload view over inner, whose
// underlying state lives in k. With an inactive plan it returns inner
// unchanged.
func (p FaultPlan) Wrap(inner adaptive.Workload, k *epochal.Kernel, nEpochs int) adaptive.Workload {
	if !p.SigConflict && !p.Panic && !p.TornState && !p.TornDelta {
		return inner
	}
	inj := &injector{inner: inner, k: k, plan: p, conflictA: -1, conflictB: -1, panicEpoch: -1}
	if p.SigConflict && nEpochs >= 3 {
		inj.conflictA = 1 + int(p.Seed%uint64(nEpochs-2))
		inj.conflictB = inj.conflictA + 1
	}
	if p.Panic && nEpochs >= 2 {
		inj.panicEpoch = 1 + int((p.Seed/7)%uint64(nEpochs-1))
		inj.panicTask = 0
		inj.panicLeft.Store(1)
	}
	if p.TornDelta && len(k.State) > 0 {
		inj.tornLeft.Store(1)
	}
	if dw, ok := inner.(speccross.DeltaWorkload); ok && dw.StateLen() > 0 && !p.TornState {
		return &deltaInjector{injector: inj, dw: dw}
	}
	return inj
}

// Err reports a fault-layer detection (currently: an aliased snapshot),
// which the differential runner surfaces as a failure.
func (inj *injector) Err() string {
	if s := inj.errMsg.Load(); s != nil {
		return *s
	}
	return ""
}

// InjectorErr extracts the fault-layer error from a wrapped workload.
func InjectorErr(w adaptive.Workload) string {
	switch inj := w.(type) {
	case *injector:
		return inj.Err()
	case *deltaInjector:
		return inj.Err()
	}
	return ""
}

func (inj *injector) Invocations() int         { return inj.inner.Invocations() }
func (inj *injector) Iterations(inv int) int   { return inj.inner.Iterations(inv) }
func (inj *injector) Sequential(inv int)       { inj.inner.Sequential(inv) }
func (inj *injector) Execute(inv, iter, t int) { inj.inner.Execute(inv, iter, t) }
func (inj *injector) Epochs() int              { return inj.inner.Epochs() }
func (inj *injector) Tasks(epoch int) int      { return inj.inner.Tasks(epoch) }
func (inj *injector) ComputeAddr(inv, iter int, buf []uint64) []uint64 {
	return inj.inner.ComputeAddr(inv, iter, buf)
}

// Run injects the speculative-path faults. Both fire only with a live
// signature — i.e. during speculative execution — so barrier re-execution
// and the non-speculative engines are untouched, exactly like real
// faults that only corrupt speculative state.
func (inj *injector) Run(epoch, task, tid int, sig *signature.Signature) {
	if sig != nil {
		if epoch == inj.conflictA || epoch == inj.conflictB {
			sig.Write(sentinelAddr)
		}
		if inj.plan.TornDelta && inj.tornLeft.CompareAndSwap(1, 0) {
			// Tear one tracked write: record the victim cell first (the
			// record-before-write contract puts it in the engine's write
			// log), scribble it directly in the underlying state —
			// bypassing any mutated WriteCell view, the fault is in the
			// speculative execution, not the repair path — then die. The
			// rollback must restore the cell from its base image. Atomic
			// like the kernel's own stores: other lanes run concurrently.
			sig.Write(0)
			atomic.AddInt64(&inj.k.State[0], 0x7e7e7e01)
			panic("chaos: injected torn delta write")
		}
		if epoch == inj.panicEpoch && task == inj.panicTask && inj.panicLeft.CompareAndSwap(1, 0) {
			panic("chaos: injected speculative fault")
		}
	}
	inj.inner.Run(epoch, task, tid, sig)
}

// Snapshot probes checkpoint isolation under TornState: a snapshot that
// aliases the live state would be torn by subsequent speculative writes,
// so the probe briefly perturbs the state and checks the snapshot did
// not follow. Called only at engine quiesce points, per the Workload
// contract.
func (inj *injector) Snapshot() any {
	snap := inj.inner.Snapshot()
	if inj.plan.TornState {
		if sl, ok := snap.([]int64); ok && len(sl) > 0 && len(inj.k.State) > 0 {
			old := inj.k.State[0]
			inj.k.State[0] = old ^ 0x5a5a5a5a
			if sl[0] == old^0x5a5a5a5a {
				msg := "torn-state probe: snapshot aliases live state"
				inj.errMsg.Store(&msg)
			}
			inj.k.State[0] = old
		}
	}
	return snap
}

// Restore simulates a torn speculative state: before handing the
// snapshot to the workload, it scribbles every state cell, so the
// restore path is proven to repair arbitrary corruption rather than
// relying on the abort having left state mostly intact.
func (inj *injector) Restore(snap any) {
	if inj.plan.TornState {
		for i := range inj.k.State {
			inj.k.State[i] += 0x6b6b6b
		}
	}
	inj.inner.Restore(snap)
}

package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Artifact is the replayable record of a failing case: the reduced Spec
// plus everything needed to re-run it exactly — worker count, segment and
// window lengths, fault plan, mutation — and the failures observed. The
// JSON form is what the shrinker writes to testdata/ and what cmd/chaos
// -replay consumes (LoadSpec also accepts it wherever a bare Spec works).
type Artifact struct {
	Seed            uint64    `json:"seed,omitempty"`
	Workers         int       `json:"workers"`
	CheckpointEvery int       `json:"checkpoint_every"`
	Window          int       `json:"window"`
	Faults          string    `json:"faults"`
	Mutation        string    `json:"mutation,omitempty"`
	Failures        []Failure `json:"failures,omitempty"`
	Spec            *Spec     `json:"spec"`
}

// NewArtifact packages a failing case for serialization.
func NewArtifact(seed uint64, opts Options, spec *Spec, fails []Failure) *Artifact {
	opts.fill()
	return &Artifact{
		Seed:            seed,
		Workers:         opts.Workers,
		CheckpointEvery: opts.CheckpointEvery,
		Window:          opts.Window,
		Faults:          opts.Faults.String(),
		Mutation:        string(opts.Mutation),
		Failures:        fails,
		Spec:            spec,
	}
}

// Options rebuilds the run options the artifact records. The fault seed
// reuses the case seed, matching what the original run used.
func (a *Artifact) Options() (Options, error) {
	faults, err := ParseFaults(a.Faults, a.Seed)
	if err != nil {
		return Options{}, err
	}
	mut, err := ParseMutation(a.Mutation)
	if err != nil {
		return Options{}, err
	}
	return Options{
		Workers:         a.Workers,
		CheckpointEvery: a.CheckpointEvery,
		Window:          a.Window,
		Faults:          faults,
		Mutation:        mut,
	}, nil
}

// WriteFile serializes the artifact into dir (created if needed) as
// <spec name>.json and returns the path.
func (a *Artifact) WriteFile(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return "", err
	}
	name := a.Spec.Name
	if name == "" {
		name = fmt.Sprintf("chaos-%d", a.Seed)
	}
	path := filepath.Join(dir, name+".json")
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadArtifact reads an artifact (or a bare Spec, which gets default run
// settings) from a JSON file and validates the embedded case.
func LoadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("chaos: %s: %v", path, err)
	}
	if art.Spec == nil {
		spec := &Spec{}
		if err := json.Unmarshal(data, spec); err != nil {
			return nil, fmt.Errorf("chaos: %s: %v", path, err)
		}
		art = Artifact{Faults: "none", Spec: spec}
	}
	if err := art.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("chaos: %s: %v", path, err)
	}
	return &art, nil
}

// Clone deep-copies a spec so shrink candidates never share slices.
func (s *Spec) Clone() *Spec {
	c := *s
	c.Epochs = make([]EpochSpec, len(s.Epochs))
	for i := range s.Epochs {
		tasks := make([]TaskSpec, len(s.Epochs[i].Tasks))
		for j, t := range s.Epochs[i].Tasks {
			tasks[j] = TaskSpec{
				Reads:  append([]uint64(nil), t.Reads...),
				Writes: append([]uint64(nil), t.Writes...),
				Work:   t.Work,
			}
		}
		c.Epochs[i].Tasks = tasks
	}
	return &c
}

// Shrink greedily reduces a failing case while preserving some failure
// (not necessarily the original one — any divergence from the oracle
// keeps a candidate). Reductions, coarse to fine: remove epoch chunks,
// remove single epochs, remove tasks, remove individual reads/writes,
// zero spin work, and finally trim the state array to the addresses
// still used. Failures in this harness are concurrent-schedule dependent,
// so a candidate only counts as "still failing" if it fails within tries
// repetitions (each repetition runs untraced and traced); the returned
// failures come from the last failing re-run of the final spec. Returns
// (nil, nil) if the input never reproduces at all.
func Shrink(spec *Spec, opts Options, tries int) (*Spec, []Failure) {
	if tries <= 0 {
		tries = 3
	}
	repro := func(s *Spec) []Failure {
		for i := 0; i < tries; i++ {
			for _, traced := range []bool{false, true} {
				o := opts
				o.Traced = traced
				if f := RunSpec(s, o); len(f) > 0 {
					return f
				}
			}
		}
		return nil
	}

	cur := spec.Clone()
	best := repro(cur)
	if best == nil {
		return nil, nil
	}
	accept := func(cand *Spec) bool {
		if f := repro(cand); f != nil {
			cur, best = cand, f
			return true
		}
		return false
	}

	for pass := 0; pass < 8; pass++ {
		improved := false

		// Epoch chunks, halving granularity down to single epochs.
		for chunk := len(cur.Epochs) / 2; chunk >= 1; chunk /= 2 {
			for i := 0; i+chunk <= len(cur.Epochs) && len(cur.Epochs) > chunk; {
				cand := cur.Clone()
				cand.Epochs = append(cand.Epochs[:i], cand.Epochs[i+chunk:]...)
				if accept(cand) {
					improved = true
				} else {
					i += chunk
				}
			}
		}

		// Single tasks (epoch removal above handles emptying an epoch).
		for e := 0; e < len(cur.Epochs); e++ {
			for t := 0; t < len(cur.Epochs[e].Tasks); {
				if len(cur.Epochs[e].Tasks) == 1 {
					break
				}
				cand := cur.Clone()
				cand.Epochs[e].Tasks = append(cand.Epochs[e].Tasks[:t], cand.Epochs[e].Tasks[t+1:]...)
				if accept(cand) {
					improved = true
				} else {
					t++
				}
			}
		}

		// Individual accesses and spin work.
		for e := 0; e < len(cur.Epochs); e++ {
			for t := 0; t < len(cur.Epochs[e].Tasks); t++ {
				for r := 0; r < len(cur.Epochs[e].Tasks[t].Reads); {
					cand := cur.Clone()
					ts := &cand.Epochs[e].Tasks[t]
					ts.Reads = append(ts.Reads[:r], ts.Reads[r+1:]...)
					if accept(cand) {
						improved = true
					} else {
						r++
					}
				}
				for w := 0; w < len(cur.Epochs[e].Tasks[t].Writes); {
					cand := cur.Clone()
					ts := &cand.Epochs[e].Tasks[t]
					ts.Writes = append(ts.Writes[:w], ts.Writes[w+1:]...)
					if accept(cand) {
						improved = true
					} else {
						w++
					}
				}
				if cur.Epochs[e].Tasks[t].Work != 0 {
					cand := cur.Clone()
					cand.Epochs[e].Tasks[t].Work = 0
					if accept(cand) {
						improved = true
					}
				}
			}
		}

		if !improved {
			break
		}
	}

	// Trim the state array to the addresses the reduced case still uses.
	maxAddr := uint64(0)
	for e := range cur.Epochs {
		for t := range cur.Epochs[e].Tasks {
			for _, a := range cur.Epochs[e].Tasks[t].Reads {
				if a > maxAddr {
					maxAddr = a
				}
			}
			for _, a := range cur.Epochs[e].Tasks[t].Writes {
				if a > maxAddr {
					maxAddr = a
				}
			}
		}
	}
	if int(maxAddr)+1 < cur.StateLen {
		cand := cur.Clone()
		cand.StateLen = int(maxAddr) + 1
		accept(cand)
	}

	cur.Name = spec.Name + "-shrunk"
	return cur, best
}

package chaos

import (
	"fmt"

	"crossinv/internal/workloads"
)

// Generation parameter bounds. Cases stay small on purpose: the point of
// a differential harness is many schedules over many shapes, not big
// inputs — a dependence-ordering bug that needs a large state to
// manifest needs, above all, the *dependence*, and small cases shrink
// and replay in milliseconds.
const (
	genMaxEpochs    = 16
	genMaxTasks     = 8
	genMaxBlock     = 12
	genMaxAddrs     = 6
	genMaxWork      = 512
	genShapeAffine  = 0
	genShapeIndir   = 1
	genShapeScatter = 2
)

// Generate derives a complete Spec from a seed. Every structural choice —
// invocation count, per-epoch task counts, dependence density and
// distance, access-pattern shape (affine, indirect, scattered), signature
// kind — comes from the seeded generator, so a seed is a full replay
// token.
//
// The dependence structure is block-ownership based: task index t owns a
// private block of state addresses and only ever writes inside it, which
// guarantees within-epoch independence by construction. Cross-invocation
// dependences come from reads into other tasks' blocks, steered away
// from the same epoch's writes; their manifest distance is controlled by
// per-task write periods (a task that writes every k-th epoch leaves its
// readers depending on values k epochs old).
func Generate(seed uint64) *Spec {
	rng := workloads.NewRng(seed)

	nEpochs := 2 + rng.Intn(genMaxEpochs-1)
	nBlocks := 2 + rng.Intn(genMaxTasks-1)
	block := 3 + rng.Intn(genMaxBlock-2)
	shape := rng.Intn(3)
	// density: expected cross-block reads per task, in eighths.
	density := rng.Intn(9)
	kinds := []string{"range", "bloom", "exact"}
	spec := &Spec{
		Name:     fmt.Sprintf("chaos-%d", seed),
		Seed:     seed,
		StateLen: nBlocks * block,
		SigKind:  kinds[rng.Intn(3)],
	}

	// Per-task write cadence: period 1 writes every epoch, longer periods
	// stretch the dependence distance their readers observe.
	period := make([]int, nBlocks)
	phase := make([]int, nBlocks)
	for t := range period {
		period[t] = 1 + rng.Intn(3)
		phase[t] = rng.Intn(period[t])
	}

	// Indirect shape: one shared permutation per block.
	perm := make([][]int, nBlocks)
	for t := range perm {
		perm[t] = rng.Perm(block)
	}

	inBlock := func(t, i int) uint64 { return uint64(t*block + i%block) }

	for e := 0; e < nEpochs; e++ {
		nTasks := 1 + rng.Intn(nBlocks)
		ep := EpochSpec{Tasks: make([]TaskSpec, nTasks)}

		// Writes first: each task's writes stay inside its own block.
		epochWrites := make(map[uint64]bool)
		for t := 0; t < nTasks; t++ {
			ts := &ep.Tasks[t]
			if e%period[t] == phase[t] {
				nw := 1 + rng.Intn(genMaxAddrs)
				base := rng.Intn(block)
				stride := 1 + rng.Intn(3)
				for i := 0; i < nw; i++ {
					var a uint64
					switch shape {
					case genShapeAffine:
						a = inBlock(t, base+stride*i)
					case genShapeIndir:
						a = inBlock(t, perm[t][(base+i)%block])
					default:
						a = inBlock(t, rng.Intn(block))
					}
					ts.Writes = append(ts.Writes, a)
					epochWrites[a] = true
				}
			}
			if rng.Intn(4) == 0 {
				ts.Work = rng.Intn(genMaxWork)
			}
		}

		// Reads: own-block reads are always safe; cross-block reads (the
		// cross-invocation dependences) must dodge this epoch's writes to
		// preserve within-epoch independence.
		for t := 0; t < nTasks; t++ {
			ts := &ep.Tasks[t]
			for i, nr := 0, rng.Intn(genMaxAddrs); i < nr; i++ {
				ts.Reads = append(ts.Reads, inBlock(t, rng.Intn(block)))
			}
			for d := 0; d < density; d++ {
				if rng.Intn(8) >= 4 {
					continue
				}
				for attempt := 0; attempt < 4; attempt++ {
					o := rng.Intn(nBlocks)
					if o == t {
						continue
					}
					a := inBlock(o, rng.Intn(block))
					if !epochWrites[a] {
						ts.Reads = append(ts.Reads, a)
						break
					}
				}
			}
		}
		spec.Epochs = append(spec.Epochs, ep)
	}

	if err := spec.Validate(); err != nil {
		// A generator bug, not an input problem: the construction above is
		// supposed to be correct by design for every seed.
		panic(fmt.Sprintf("chaos: generated invalid spec for seed %d: %v", seed, err))
	}
	return spec
}

package chaos

import (
	"strings"
	"testing"

	"crossinv/internal/analysis/xdep"
)

// TestStaticClaimMatchesRuntime: on the catcher case (writer epoch 2i,
// reader epoch 2i+1) the declared-set classification is exact —
// forward-only with distance 1 — and the shadow-memory observation agrees,
// so the honest claim passes the gate.
func TestStaticClaimMatchesRuntime(t *testing.T) {
	spec := MutationCatcher()
	claim := StaticClaim(spec)
	if claim.Class != xdep.ForwardOnly || claim.MinDistance != 1 {
		t.Fatalf("claim = %s min %d, want forward-only min 1", claim.ClassName, claim.MinDistance)
	}
	if detail := CheckStaticSoundness(spec, claim); detail != "" {
		t.Errorf("honest claim failed the gate: %s", detail)
	}

	conflicts, minDist := observeConflicts(spec)
	if conflicts != claim.Conflicts || minDist != claim.MinDistance {
		t.Errorf("observed %d conflicts min %d, claim says %d min %d",
			conflicts, minDist, claim.Conflicts, claim.MinDistance)
	}
}

// TestOptimisticClaimFailsGate pins both forbidden directions: a claim of
// none where conflicts manifest, and a forward-only minimum distance above
// what the runtime observes.
func TestOptimisticClaimFailsGate(t *testing.T) {
	spec := MutationCatcher()
	none := xdep.SetFacts{Class: xdep.None, ClassName: "none"}
	if detail := CheckStaticSoundness(spec, none); !strings.Contains(detail, "optimistic") {
		t.Errorf("widened 'none' claim passed the gate: %q", detail)
	}
	far := xdep.SetFacts{Class: xdep.ForwardOnly, ClassName: "forward-only", MinDistance: 5}
	if detail := CheckStaticSoundness(spec, far); !strings.Contains(detail, "optimistic") {
		t.Errorf("inflated min-distance claim passed the gate: %q", detail)
	}
	// Cyclic licenses nothing, so it can never be optimistic.
	cyc := xdep.SetFacts{Class: xdep.Cyclic, ClassName: "cyclic"}
	if detail := CheckStaticSoundness(spec, cyc); detail != "" {
		t.Errorf("cyclic claim failed the gate: %s", detail)
	}
}

// TestWidenStaticMutationCaught drives the mutation end to end through
// RunSpec: the corrupted claim must produce a deterministic "static"
// failure on the first run, before any engine executes.
func TestWidenStaticMutationCaught(t *testing.T) {
	spec := MutationCatcher()
	fails := RunSpec(spec, Options{Mutation: MutWidenStatic})
	var caught bool
	for _, f := range fails {
		if f.Engine == "static" && strings.Contains(f.Detail, "optimistic") {
			caught = true
		}
	}
	if !caught {
		t.Fatalf("widen-static not caught by the soundness gate: %v", fails)
	}
}

// TestSweepSoundnessGate is the per-seed half of the 200-seed CI sweep's
// acceptance criterion in miniature: over a bundle of generated workloads,
// zero cases where the static classification claims none/forward-only and
// the runtime observes a contradicting conflict.
func TestSweepSoundnessGate(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		spec := Generate(seed)
		if detail := CheckStaticSoundness(spec, StaticClaim(spec)); detail != "" {
			t.Errorf("seed %d: %s", seed, detail)
		}
	}
}

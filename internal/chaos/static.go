package chaos

import (
	"fmt"

	"crossinv/internal/analysis/xdep"
	"crossinv/internal/runtime/shadow"
)

// This file is the differential soundness gate for the static
// cross-invocation analyzer: every generated workload's declared access
// sets are classified by xdep.ClassifySets (the claim), the same case is
// then walked epoch by epoch through shadow memory — the runtime's own
// conflict detector — and the claim is checked against what actually
// manifested. The xdep conservatism contract says the analyzer may only
// err upward (claim more dependence than exists); a claim of `none` with
// an observed runtime conflict, or a `forward-only` minimum distance
// above an observed distance, is optimism — the bug class that would make
// an engine drop synchronization a program needs — and fails the sweep.

// StaticClaim computes the static cross-invocation verdict for a case
// from its declared per-epoch access sets.
func StaticClaim(spec *Spec) xdep.SetFacts {
	epochs := make([]xdep.EpochAccess, len(spec.Epochs))
	for e := range spec.Epochs {
		for t := range spec.Epochs[e].Tasks {
			ts := &spec.Epochs[e].Tasks[t]
			epochs[e].Reads = append(epochs[e].Reads, ts.Reads...)
			epochs[e].Writes = append(epochs[e].Writes, ts.Writes...)
		}
	}
	return xdep.ClassifySets(epochs)
}

// observeConflicts materializes the case's kernel and replays its access
// stream in sequential epoch order through two shadow stores (last writer,
// last reader per address — the DOMORE scheduler's own detector),
// returning the cross-epoch conflict count and the minimum observed
// conflict distance in epochs (0 when no conflict manifested).
func observeConflicts(spec *Spec) (conflicts int, minDist int64) {
	k := spec.Kernel()
	writes, reads := shadow.NewSparse(), shadow.NewSparse()
	hit := func(last shadow.Entry, e int) {
		if last.Iter == shadow.None || last.Iter == int64(e) {
			return
		}
		conflicts++
		if d := int64(e) - last.Iter; minDist == 0 || d < minDist {
			minDist = d
		}
	}
	var rbuf, wbuf []uint64
	for e := 0; e < k.Epochs(); e++ {
		// Lookups for the whole epoch first: same-epoch tasks are
		// independent by Validate, so only earlier epochs conflict.
		for t := 0; t < k.Tasks(e); t++ {
			rbuf, wbuf = k.Access(e, t, rbuf[:0], wbuf[:0])
			for _, a := range rbuf {
				hit(writes.Lookup(a), e) // RAW
			}
			for _, a := range wbuf {
				hit(writes.Lookup(a), e) // WAW
				hit(reads.Lookup(a), e)  // WAR
			}
		}
		for t := 0; t < k.Tasks(e); t++ {
			rbuf, wbuf = k.Access(e, t, rbuf[:0], wbuf[:0])
			for _, a := range rbuf {
				reads.Update(a, 0, int64(e))
			}
			for _, a := range wbuf {
				writes.Update(a, 0, int64(e))
			}
		}
	}
	return conflicts, minDist
}

// CheckStaticSoundness diffs a static claim against the runtime-observed
// conflicts for the case and returns a non-empty detail string when the
// claim is optimistic — the direction the conservatism contract forbids.
func CheckStaticSoundness(spec *Spec, claim xdep.SetFacts) string {
	conflicts, minDist := observeConflicts(spec)
	switch claim.Class {
	case xdep.None:
		if conflicts > 0 {
			return fmt.Sprintf(
				"static claim 'none' is optimistic: runtime observed %d cross-epoch conflicts (min distance %d)",
				conflicts, minDist)
		}
	case xdep.ForwardOnly:
		if conflicts > 0 && minDist < claim.MinDistance {
			return fmt.Sprintf(
				"static claim 'forward-only min distance %d' is optimistic: runtime observed distance %d",
				claim.MinDistance, minDist)
		}
	}
	// Cyclic/unknown license nothing, so they can never be optimistic.
	return ""
}

package chaos

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"crossinv/internal/raceflag"
	"crossinv/internal/runtime/speccross"
)

// seedCount scales the differential sweeps: the race detector slows every
// engine run by an order of magnitude, so -race suites sample fewer seeds
// (CI runs the full sweep via cmd/chaos).
func seedCount() int {
	if raceflag.Enabled {
		return 3
	}
	return 8
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		a := Generate(seed) // panics on an invalid construction
		b := Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: generation is not deterministic", seed)
		}
		if got, want := a.SequentialState(), b.SequentialState(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: sequential oracle is not deterministic", seed)
		}
	}
}

func TestGenerateCoversShapes(t *testing.T) {
	kinds := map[string]bool{}
	var deps, multi int
	for seed := uint64(1); seed <= 64; seed++ {
		s := Generate(seed)
		kinds[s.SigKind] = true
		if s.NumEpochs() > 1 {
			multi++
		}
		if s.TotalTasks() > int64(s.NumEpochs()) {
			deps++
		}
	}
	for _, k := range []string{"range", "bloom", "exact"} {
		if !kinds[k] {
			t.Errorf("64 seeds never produced sig kind %q", k)
		}
	}
	if multi < 32 || deps < 16 {
		t.Errorf("generator variety too low: %d multi-epoch, %d multi-task of 64", multi, deps)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	spec := Generate(7)
	data, err := spec.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "case.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, spec) {
		t.Fatalf("round trip changed the spec:\n%+v\n%+v", got, spec)
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	opts := Options{Faults: AllFaults(3), Mutation: MutDropAddr}
	art := NewArtifact(3, opts, Generate(3), []Failure{{Engine: "domore", Detail: "x"}})
	path, err := art.WriteFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// LoadSpec accepts the artifact wrapper wherever a bare spec works.
	spec, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, art.Spec) {
		t.Fatal("artifact round trip changed the spec")
	}
	back, err := art.Options()
	if err != nil {
		t.Fatal(err)
	}
	if back.Faults.String() != opts.Faults.String() || back.Mutation != opts.Mutation {
		t.Fatalf("artifact options round trip: got %+v", back)
	}
}

func TestParseFaultsAndMutation(t *testing.T) {
	p, err := ParseFaults("queue-full, panic", 9)
	if err != nil || !p.QueueFull || !p.Panic || p.Timeout {
		t.Fatalf("ParseFaults: %+v, %v", p, err)
	}
	if p.String() != "queue-full,panic" {
		t.Fatalf("String: %q", p.String())
	}
	if _, err := ParseFaults("bogus", 0); err == nil {
		t.Fatal("bogus fault accepted")
	}
	if all := AllFaults(1); all.String() != "queue-full,delay,sig-conflict,panic,timeout,torn-state,torn-delta,shard-skew" {
		t.Fatalf("AllFaults string: %q", all.String())
	}
	if (FaultPlan{}).Active() || !AllFaults(0).Active() {
		t.Fatal("Active wrong")
	}
	if _, err := ParseMutation("drop-addr"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseMutation("bogus"); err == nil {
		t.Fatal("bogus mutation accepted")
	}
}

func TestValidateRejectsBrokenSpecs(t *testing.T) {
	for _, tc := range []struct {
		name string
		mod  func(*Spec)
	}{
		{"write out of range", func(s *Spec) { s.Epochs[0].Tasks[0].Writes = []uint64{99} }},
		{"read out of range", func(s *Spec) { s.Epochs[0].Tasks[0].Reads = []uint64{99} }},
		{"write-write overlap", func(s *Spec) {
			s.Epochs[0].Tasks[0].Writes = []uint64{1}
			s.Epochs[0].Tasks[1].Writes = []uint64{1}
		}},
		{"read-write overlap", func(s *Spec) {
			s.Epochs[0].Tasks[0].Writes = []uint64{1}
			s.Epochs[0].Tasks[1].Reads = []uint64{1}
		}},
		{"bad sig kind", func(s *Spec) { s.SigKind = "sha" }},
		{"no epochs", func(s *Spec) { s.Epochs = nil }},
	} {
		s := &Spec{Name: "v", StateLen: 4, Epochs: []EpochSpec{{Tasks: make([]TaskSpec, 2)}}}
		tc.mod(s)
		if s.Validate() == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestDifferentialCleanSeeds is the core oracle check: with no faults and
// no mutation, every engine must reproduce the sequential state exactly,
// untraced and traced, for every generated case.
func TestDifferentialCleanSeeds(t *testing.T) {
	for seed := uint64(1); seed <= uint64(seedCount()); seed++ {
		for _, f := range RunSeed(seed, Options{}) {
			t.Errorf("seed %d: %s", seed, f)
		}
	}
}

// TestDifferentialAllFaults re-runs the sweep with every fault injected.
// Faults force the recovery machinery (rollback, barrier re-execution,
// queue backoff, torn-state repair) but never change semantics, so the
// oracle must still hold.
func TestDifferentialAllFaults(t *testing.T) {
	for seed := uint64(1); seed <= uint64(seedCount()); seed++ {
		for _, f := range RunSeed(seed, Options{Faults: AllFaults(seed)}) {
			t.Errorf("seed %d: %s", seed, f)
		}
	}
}

// TestDifferentialTornDelta runs the sweep with only the torn-delta fault
// enabled: without TornState forcing full snapshots, the engines keep the
// incremental-checkpoint path, so the scribbled cell is repaired by a
// delta restore — and semantics must still hold.
func TestDifferentialTornDelta(t *testing.T) {
	for seed := uint64(1); seed <= uint64(seedCount()); seed++ {
		for _, f := range RunSeed(seed, Options{Faults: FaultPlan{Seed: seed, TornDelta: true}}) {
			t.Errorf("seed %d: %s", seed, f)
		}
	}
}

// TestTornDeltaExercisesDeltaRestore pins that the torn-delta fault really
// drives the incremental rollback (rather than being silently absorbed by
// a full snapshot): a speccross run over a delta-capable case with the
// fault must record at least one delta restore and still match the oracle.
func TestTornDeltaExercisesDeltaRestore(t *testing.T) {
	spec := MutationCatcher()
	want := spec.SequentialState()
	k := spec.Kernel()
	w := FaultPlan{TornDelta: true}.Wrap(k, k, spec.NumEpochs())
	st := speccross.Run(w, speccross.Config{
		Workers: 4, SigKind: spec.Kind(), CheckpointEvery: 3,
	})
	if st.DeltaRestores == 0 {
		t.Fatalf("torn-delta run recorded no delta restores: %+v", st)
	}
	if st.Misspeculations == 0 {
		t.Fatalf("torn-delta run recorded no misspeculation: %+v", st)
	}
	for i, v := range k.State {
		if v != want[i] {
			t.Fatalf("state[%d] = %d, oracle %d", i, v, want[i])
		}
	}
}

// TestMutationsCaughtAndShrunk proves the harness detects deliberately
// injected engine-contract bugs: each mutation applied to the catcher
// case must produce a failure, and the shrinker must reduce the case to a
// smaller spec that still fails and survives a serialization round trip.
func TestMutationsCaughtAndShrunk(t *testing.T) {
	for _, m := range Mutations() {
		m := m
		t.Run(string(m), func(t *testing.T) {
			spec := MutationCatcher()
			opts := Options{Mutation: m, Faults: m.Faults()}
			opts.Faults.Seed = 0

			var fails []Failure
			for i := 0; i < 10 && len(fails) == 0; i++ {
				for _, traced := range []bool{false, true} {
					o := opts
					o.Traced = traced
					if f := RunSpec(spec, o); len(f) > 0 {
						fails = f
						break
					}
				}
			}
			if len(fails) == 0 {
				t.Fatalf("mutation %s was not detected in 10 differential runs", m)
			}

			shrunk, sfails := Shrink(spec, opts, 3)
			if shrunk == nil {
				t.Fatalf("mutation %s: failing case did not reproduce for the shrinker", m)
			}
			if len(sfails) == 0 {
				t.Fatalf("mutation %s: shrinker returned no failures", m)
			}
			if shrunk.TotalTasks() > spec.TotalTasks() {
				t.Errorf("shrunk case grew: %d tasks > %d", shrunk.TotalTasks(), spec.TotalTasks())
			}
			if err := shrunk.Validate(); err != nil {
				t.Errorf("shrunk case invalid: %v", err)
			}

			art := NewArtifact(0, opts, shrunk, sfails)
			path, err := art.WriteFile(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := LoadSpec(path); err != nil {
				t.Errorf("shrunk artifact does not load: %v", err)
			}
		})
	}
}

// TestReplayTestdata re-runs every committed shrunk artifact with its
// recorded settings and requires the failure to reproduce — the
// regression guarantee that a once-caught bug stays caught.
func TestReplayTestdata(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed artifacts under testdata/")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var art Artifact
			if err := json.Unmarshal(data, &art); err != nil {
				t.Fatal(err)
			}
			if art.Spec == nil {
				t.Fatal("artifact has no spec")
			}
			if err := art.Spec.Validate(); err != nil {
				t.Fatal(err)
			}
			opts, err := art.Options()
			if err != nil {
				t.Fatal(err)
			}
			if opts.Mutation == MutNone {
				t.Fatal("committed artifact records no mutation: a real engine bug would have to be fixed, not committed")
			}
			for i := 0; i < 10; i++ {
				for _, traced := range []bool{false, true} {
					o := opts
					o.Traced = traced
					if f := RunSpec(art.Spec, o); len(f) > 0 {
						return
					}
				}
			}
			t.Errorf("recorded failure did not reproduce in 10 runs")
		})
	}
}

package sim_test

import (
	"testing"

	"crossinv/internal/runtime/adaptive"
	"crossinv/internal/sim"
	"crossinv/internal/workloads/phased"
)

// phaseTrace slices one phase out of the phased trace.
func phaseTrace(tr *sim.Trace, bounds []int, phase int) *sim.Trace {
	return &sim.Trace{Name: tr.Name, Epochs: tr.Epochs[bounds[phase]:bounds[phase+1]]}
}

// staticBest simulates each static engine end-to-end on a trace at the
// given core budget and returns the per-engine makespans: barrier, DOMORE,
// and SPECCROSS (windowed, misspeculations included).
func staticMakespans(tr *sim.Trace, threads, window int, m sim.CostModel) map[adaptive.Engine]int64 {
	out := map[adaptive.Engine]int64{}
	out[adaptive.EngineBarrier] = sim.SimBarrier(tr, threads, m).Makespan
	out[adaptive.EngineDomore] = sim.SimDomore(tr, threads-1, m).Makespan
	spec := sim.SimAdaptive(tr, sim.AdaptiveConfig{
		Threads: threads, Window: window,
		Policy: adaptive.Fixed(adaptive.EngineSpecCross),
		Start:  adaptive.EngineSpecCross,
	}, m)
	out[adaptive.EngineSpecCross] = spec.Makespan
	return out
}

// TestAdaptiveSimTracksPhaseWinner is the acceptance check behind figA.1:
// at 24 simulated cores on the phase-shifting workload, the adaptive
// engine stays within 10% of the best static engine in every phase, and
// end-to-end it beats both all-DOMORE and all-SPECCROSS.
func TestAdaptiveSimTracksPhaseWinner(t *testing.T) {
	const threads = 24
	m := sim.DefaultModel()
	tr := phased.New(1).Trace()
	bounds := phased.PhaseBounds(1)
	seq := tr.SeqTime()

	res := sim.SimAdaptive(tr, sim.AdaptiveConfig{Threads: threads, Window: phased.Window}, m)
	t.Logf("adaptive: makespan=%d speedup=%.2f switches=%d windows=%v",
		res.Makespan, res.Speedup(seq), res.Switches, res.EngineWindows)

	// End-to-end comparison against the static engines.
	static := staticMakespans(tr, threads, phased.Window, m)
	for eng, mk := range static {
		t.Logf("static %-9v makespan=%d speedup=%.2f", eng, mk, float64(seq)/float64(mk))
	}
	if res.Makespan >= static[adaptive.EngineDomore] {
		t.Errorf("adaptive (%d) does not beat all-DOMORE (%d)", res.Makespan, static[adaptive.EngineDomore])
	}
	if res.Makespan >= static[adaptive.EngineSpecCross] {
		t.Errorf("adaptive (%d) does not beat all-SPECCROSS (%d)", res.Makespan, static[adaptive.EngineSpecCross])
	}

	// Per-phase comparison: group the adaptive windows by phase (Window
	// divides PhaseEpochs, so windows never straddle a boundary) and charge
	// each switch to the phase it happened in.
	phaseMk := make([]int64, phased.NumPhases)
	prev := adaptive.Engine(-1)
	swCost := m.BarrierBase + m.BarrierPerThread*threads
	for _, w := range res.Windows {
		p := 0
		for p+1 < phased.NumPhases && w.Start >= bounds[p+1] {
			p++
		}
		phaseMk[p] += w.Makespan
		if prev >= 0 && w.Engine != prev {
			phaseMk[p] += swCost
		}
		prev = w.Engine
	}
	var totalCheck int64
	for p := 0; p < phased.NumPhases; p++ {
		totalCheck += phaseMk[p]
		sub := phaseTrace(tr, bounds, p)
		best := int64(1) << 62
		bestEng := adaptive.Engine(0)
		for eng, mk := range staticMakespans(sub, threads, phased.Window, m) {
			if mk < best {
				best, bestEng = mk, eng
			}
		}
		ratio := float64(phaseMk[p]) / float64(best)
		t.Logf("phase %d [%d,%d): adaptive=%d best-static=%d (%v) ratio=%.3f",
			p, bounds[p], bounds[p+1], phaseMk[p], best, bestEng, ratio)
		if ratio > 1.10 {
			t.Errorf("phase %d: adaptive %.1f%% above best static engine (limit 10%%)", p, (ratio-1)*100)
		}
	}
	if totalCheck != res.Makespan {
		t.Fatalf("per-phase sum %d != total makespan %d", totalCheck, res.Makespan)
	}
}

// TestAdaptiveSimScales runs the full 2–24 core sweep and checks the
// adaptive engine never loses to the static engines by more than the
// switching overhead at any budget.
func TestAdaptiveSimScales(t *testing.T) {
	m := sim.DefaultModel()
	tr := phased.New(1).Trace()
	seq := tr.SeqTime()
	prevSpeedup := 0.0
	for _, threads := range []int{2, 4, 8, 12, 16, 20, 24} {
		res := sim.SimAdaptive(tr, sim.AdaptiveConfig{Threads: threads, Window: phased.Window}, m)
		sp := res.Speedup(seq)
		t.Logf("threads=%2d speedup=%.2f switches=%d engines=%v", threads, sp, res.Switches, res.EngineWindows)
		if sp <= 0 {
			t.Fatalf("threads=%d: no speedup computed", threads)
		}
		if threads >= 8 && sp < prevSpeedup*0.8 {
			t.Errorf("threads=%d: speedup %.2f collapsed from %.2f", threads, sp, prevSpeedup)
		}
		prevSpeedup = sp
	}
}

// TestManifestRateSignal checks the simulated DOMORE monitor against the
// phased workload's construction: high-rate phases must report well above
// the default SpecEnter threshold, low-rate phases well below.
func TestManifestRateSignal(t *testing.T) {
	m := sim.DefaultModel()
	tr := phased.New(1).Trace()
	bounds := phased.PhaseBounds(1)
	res := sim.SimAdaptive(tr, sim.AdaptiveConfig{
		Threads: 24, Window: phased.Window,
		Policy: adaptive.Fixed(adaptive.EngineDomore),
		Start:  adaptive.EngineDomore,
	}, m)
	for _, w := range res.Windows {
		if w.Start == bounds[0] || w.Start == bounds[1] || w.Start == bounds[2] {
			// Phase-opening windows mix boundary epochs; skip them.
			continue
		}
		high := phased.HighPhase(w.Start, 1)
		if high && w.ManifestRate < 0.3 {
			t.Errorf("window [%d,%d): high-phase manifest rate %.3f < 0.3", w.Start, w.End, w.ManifestRate)
		}
		if !high && w.ManifestRate > 0.05 {
			t.Errorf("window [%d,%d): low-phase manifest rate %.3f > 0.05", w.Start, w.End, w.ManifestRate)
		}
	}
}

// TestMinConflictDistanceGate checks the §4.4 profitability rule drives
// misspeculation exactly where the workload plants close conflicts.
func TestMinConflictDistanceGate(t *testing.T) {
	m := sim.DefaultModel()
	res := sim.SimAdaptive(phased.New(1).Trace(), sim.AdaptiveConfig{
		Threads: 24, Window: phased.Window,
		Policy: adaptive.Fixed(adaptive.EngineSpecCross),
		Start:  adaptive.EngineSpecCross,
	}, m)
	misspec, clean := 0, 0
	for _, w := range res.Windows {
		if w.Misspeculated {
			misspec++
			if !phased.HighPhase(w.Start, 1) {
				t.Errorf("window [%d,%d) misspeculated in the low phase", w.Start, w.End)
			}
		} else {
			clean++
			if phased.HighPhase(w.Start, 1) && w.Start%phased.PhaseEpochs != 0 {
				t.Errorf("window [%d,%d) in a high phase did not misspeculate", w.Start, w.End)
			}
		}
	}
	if misspec == 0 || clean == 0 {
		t.Fatalf("want both outcomes, got %d misspeculated / %d clean windows", misspec, clean)
	}

	// The race-safe variant keeps every conflict beyond the gate: at the
	// same budget nothing misspeculates.
	safe := sim.SimAdaptive(phased.NewSafe(1).Trace(), sim.AdaptiveConfig{
		Threads: 24, Window: phased.Window,
		Policy: adaptive.Fixed(adaptive.EngineSpecCross),
		Start:  adaptive.EngineSpecCross,
	}, m)
	for _, w := range safe.Windows {
		if w.Misspeculated {
			t.Errorf("safe variant window [%d,%d) misspeculated", w.Start, w.End)
		}
	}
}

// Package sim is a discrete-event, virtual-time execution simulator for the
// three execution strategies the evaluation compares: barrier-synchronized
// DOALL (the pthread-barrier baseline of Figs 5.1–5.2), DOMORE's
// scheduler/worker pipeline, and SPECCROSS's speculative epochs.
//
// The simulator exists because the paper's numbers come from a 24-core
// Xeon X7460, while correctness runs here execute on whatever cores the
// host has (see DESIGN.md, substitution 1). Each workload exports a Trace —
// its epochs, per-task costs and address sets, and the serial work between
// invocations — and the simulator advances per-thread virtual clocks using
// exactly the ordering rules the real runtimes enforce: barriers join all
// clocks; the DOMORE scheduler serializes address computation and delays
// conflicting iterations until their dependences complete; SPECCROSS lets
// epochs overlap, charges the checker, and synchronizes only at checkpoints.
// Speedups are virtual-time ratios against the sequential sum.
package sim

import "fmt"

// Task is one inner-loop iteration: its execution cost in virtual time
// units and the shared addresses it reads and writes.
type Task struct {
	Cost   int64
	Reads  []uint64
	Writes []uint64
	// SchedCost overrides the DOMORE scheduler's cost for this task
	// (computeAddr + shadow + dispatch); 0 means use the cost model
	// (SchedPerIter + SchedPerAddr per address).
	SchedCost int64
}

// Epoch is one loop invocation: the serial (outer-loop) work preceding it
// and its parallel tasks.
type Epoch struct {
	SeqCost int64
	Tasks   []Task
	// JoinAfter forces the DOMORE scheduler to wait for every dispatched
	// task before continuing past this epoch — the plan used when the
	// following sequential code consumes the workers' results (the
	// FLUIDANIMATE-1 shape, Fig 5.1(d), where DOMORE cannot overlap
	// invocations).
	JoinAfter bool
	// PerThreadCost is paid by every worker thread once per epoch
	// regardless of its task share — the LOCALWRITE redundant traversal
	// (§2.2: "each worker thread executes all of the iterations" and skips
	// non-owned updates), which grows no cheaper with more threads.
	PerThreadCost int64
}

// Trace is a workload's recorded execution structure.
type Trace struct {
	Name   string
	Epochs []Epoch
}

// Tasks reports the total task count.
func (t *Trace) Tasks() int {
	n := 0
	for _, e := range t.Epochs {
		n += len(e.Tasks)
	}
	return n
}

// SeqTime is the sequential execution time: all serial sections, all task
// costs, and one copy of any per-thread redundancy (a single thread walks
// the iteration space exactly once).
func (t *Trace) SeqTime() int64 {
	var total int64
	for _, e := range t.Epochs {
		total += e.SeqCost + e.PerThreadCost
		for _, task := range e.Tasks {
			total += task.Cost
		}
	}
	return total
}

// CostModel holds the virtual-time constants of the simulated machine.
// Values are in abstract time units (≈ nanoseconds on the paper's testbed).
type CostModel struct {
	// BarrierBase and BarrierPerThread model pthread_barrier_wait:
	// cost = BarrierBase + BarrierPerThread·threads, growing with
	// contention as Fig 4.3 measures.
	BarrierBase, BarrierPerThread int64
	// SchedPerAddr is the DOMORE scheduler's cost per address check
	// (computeAddr + shadow update, Algorithm 1).
	SchedPerAddr int64
	// SchedPerIter is the scheduler's fixed per-iteration cost (schedule +
	// produce).
	SchedPerIter int64
	// WorkerSyncCost is a worker's cost to wait-check one condition.
	WorkerSyncCost int64
	// WorkerPerTask is a DOMORE worker's fixed per-iteration cost (queue
	// consume, completion publish).
	WorkerPerTask int64
	// CheckPerTask is the SPECCROSS checker's cost per checking request.
	CheckPerTask int64
	// TaskOverhead is SPECCROSS's per-task bookkeeping (signature, queue).
	TaskOverhead int64
	// CheckpointCost is the cost of one checkpoint synchronization.
	CheckpointCost int64
}

// DefaultModel returns constants calibrated so the evaluated workloads
// land in the regimes the paper reports (barrier cost on the order of
// thousands of cycles and rising with thread count; scheduler work an
// order of magnitude below typical task cost; checking cheaper than
// tasks).
func DefaultModel() CostModel {
	return CostModel{
		BarrierBase:      2500,
		BarrierPerThread: 1200,
		SchedPerAddr:     60,
		SchedPerIter:     90,
		WorkerSyncCost:   120,
		WorkerPerTask:    150,
		CheckPerTask:     75,
		TaskOverhead:     100,
		CheckpointCost:   12000,
	}
}

// Result summarizes one simulated execution.
type Result struct {
	Makespan int64
	// Idle is the summed idle time across threads (waiting at barriers,
	// stalling on conditions, or starving for work).
	Idle int64
	// Threads is the thread count simulated (workers + scheduler/checker
	// where applicable).
	Threads int
	// Stalls counts synchronization waits that actually delayed a thread.
	Stalls int64
}

// Speedup reports seq/makespan.
func (r Result) Speedup(seq int64) float64 {
	if r.Makespan == 0 {
		return 0
	}
	return float64(seq) / float64(r.Makespan)
}

// SimBarrier simulates the baseline: each epoch's tasks are dealt
// round-robin to threads; the serial section runs on one thread while the
// others wait; a barrier (whose cost grows with the thread count) joins all
// threads after every epoch.
func SimBarrier(tr *Trace, threads int, m CostModel) Result {
	if threads <= 0 {
		panic(fmt.Sprintf("sim: invalid thread count %d", threads))
	}
	barrier := m.BarrierBase + m.BarrierPerThread*int64(threads)
	clock := make([]int64, threads)
	var idle int64
	now := int64(0)
	for _, e := range tr.Epochs {
		// Serial section on thread 0; all threads begin the epoch together.
		now += e.SeqCost
		for i := range clock {
			clock[i] = now + e.PerThreadCost
		}
		for i, task := range e.Tasks {
			clock[i%threads] += task.Cost
		}
		// Barrier: everyone advances to the latest clock, paying the
		// barrier cost. Idle time — what Fig 4.3 calls barrier overhead —
		// is the imbalance wait plus the barrier operation itself, on
		// every thread.
		max := now
		for _, c := range clock {
			if c > max {
				max = c
			}
		}
		for _, c := range clock {
			idle += max - c
		}
		idle += barrier * int64(threads)
		now = max + barrier
	}
	return Result{Makespan: now, Idle: idle, Threads: threads}
}

// SimDomore simulates the DOMORE pipeline of Fig 3.2(c): a scheduler thread
// executes serial sections and per-iteration address checks, dispatching
// tasks to workers; a task may not start before the scheduler has
// dispatched it, its worker is free, and every earlier task that touched a
// common address (with a write on either side) has finished — the runtime's
// synchronization conditions.
func SimDomore(tr *Trace, workers int, m CostModel) Result {
	if workers <= 0 {
		panic(fmt.Sprintf("sim: invalid worker count %d", workers))
	}
	sched := int64(0)
	workerFree := make([]int64, workers)
	// lastTouch maps address → (finish time of last accessor, last writer
	// finish time) so read/read sharing does not serialize.
	type touch struct {
		writeFinish int64
		readFinish  int64
	}
	lastTouch := map[uint64]touch{}
	var idle, stalls int64
	iter := 0
	for _, e := range tr.Epochs {
		sched += e.SeqCost
		for _, task := range e.Tasks {
			if task.SchedCost > 0 {
				sched += task.SchedCost
			} else {
				sched += m.SchedPerIter + m.SchedPerAddr*int64(len(task.Reads)+len(task.Writes))
			}
			w := iter % workers
			iter++
			ready := sched
			if workerFree[w] > ready {
				ready = workerFree[w]
			}
			depReady := int64(0)
			for _, a := range task.Reads {
				if t, ok := lastTouch[a]; ok && t.writeFinish > depReady {
					depReady = t.writeFinish
				}
			}
			for _, a := range task.Writes {
				if t, ok := lastTouch[a]; ok {
					if t.writeFinish > depReady {
						depReady = t.writeFinish
					}
					if t.readFinish > depReady {
						depReady = t.readFinish
					}
				}
			}
			if depReady > ready {
				idle += depReady - ready
				stalls++
				ready = depReady + m.WorkerSyncCost
			}
			if wf := workerFree[w]; ready > wf {
				idle += ready - wf
			}
			finish := ready + task.Cost + m.WorkerPerTask
			workerFree[w] = finish
			for _, a := range task.Writes {
				t := lastTouch[a]
				if finish > t.writeFinish {
					t.writeFinish = finish
				}
				lastTouch[a] = t
			}
			for _, a := range task.Reads {
				t := lastTouch[a]
				if finish > t.readFinish {
					t.readFinish = finish
				}
				lastTouch[a] = t
			}
		}
		if e.JoinAfter {
			// The scheduler's next sequential section consumes worker
			// results: wait for every worker to drain.
			max := sched
			for _, f := range workerFree {
				if f > max {
					max = f
				}
			}
			idle += max - sched
			sched = max
		}
	}
	makespan := sched
	for _, f := range workerFree {
		if f > makespan {
			makespan = f
		}
	}
	return Result{Makespan: makespan, Idle: idle, Threads: workers + 1, Stalls: stalls}
}

// SpecConfig tunes a SPECCROSS simulation.
type SpecConfig struct {
	// Workers is the worker thread count (the checker is one more).
	Workers int
	// CheckpointEvery is the checkpoint period in epochs.
	CheckpointEvery int
	// SpecDistance bounds how many tasks a worker may run ahead of the
	// laggard; 0 means unbounded.
	SpecDistance int64
	// DistanceOf, when set, overrides SpecDistance per epoch (per-loop
	// profiled distances).
	DistanceOf func(epoch int) int64
	// MisspecEpoch, when >= 0, injects one misspeculation in the segment
	// containing that epoch (Fig 5.3's fault injection).
	MisspecEpoch int
}

// SimSpecCross simulates speculative barrier execution: workers flow across
// epoch boundaries, each task pays the bookkeeping overhead, the (single)
// checker consumes one request per task, dependences across epochs order
// conflicting tasks (profiled spec-distance gating prevents them from
// overlapping, which is what zero-misspeculation runs look like), and every
// segment ends with a checkpoint that waits for workers and checker. An
// injected misspeculation rolls its whole segment back and re-executes it
// with barriers.
func SimSpecCross(tr *Trace, cfg SpecConfig, m CostModel) Result {
	if cfg.Workers <= 0 {
		panic(fmt.Sprintf("sim: invalid worker count %d", cfg.Workers))
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 1000
	}
	if cfg.MisspecEpoch == 0 {
		cfg.MisspecEpoch = -1
	}
	nw := cfg.Workers
	clock := make([]int64, nw)
	var idle, stalls int64
	checker := int64(0)
	now := int64(0) // segment base time

	// Global completion ordering state for spec-distance gating.
	type touch struct{ writeFinish, readFinish int64 }

	for seg := 0; seg < len(tr.Epochs); seg += cfg.CheckpointEvery {
		end := seg + cfg.CheckpointEvery
		if end > len(tr.Epochs) {
			end = len(tr.Epochs)
		}
		for i := range clock {
			clock[i] = now
		}
		segCheckerStart := checker
		if segCheckerStart < now {
			segCheckerStart = now
		}
		checker = segCheckerStart
		lastTouch := map[uint64]touch{}
		finishTimes := []int64{} // per-global-task finish, for spec distance

		for ei := seg; ei < end; ei++ {
			e := tr.Epochs[ei]
			// Serial sections are privatized/replayed: every worker pays
			// them (the duplication of §4.3), plus any per-thread
			// redundancy the inner parallelization carries.
			for i := range clock {
				clock[i] += e.SeqCost + e.PerThreadCost
			}
			for ti, task := range e.Tasks {
				w := ti % nw
				ready := clock[w]
				// Cross-epoch dependence ordering (the profiled distance
				// keeps speculation misspeculation-free).
				depReady := int64(0)
				for _, a := range task.Reads {
					if t, ok := lastTouch[a]; ok && t.writeFinish > depReady {
						depReady = t.writeFinish
					}
				}
				for _, a := range task.Writes {
					if t, ok := lastTouch[a]; ok {
						if t.writeFinish > depReady {
							depReady = t.writeFinish
						}
						if t.readFinish > depReady {
							depReady = t.readFinish
						}
					}
				}
				// Speculative-range gating.
				dist := cfg.SpecDistance
				if cfg.DistanceOf != nil {
					dist = cfg.DistanceOf(ei)
				}
				if dist > 0 {
					g := int64(len(finishTimes))
					if back := g - dist; back >= 0 {
						if ft := finishTimes[back]; ft > depReady {
							depReady = ft
						}
					}
				}
				if depReady > ready {
					idle += depReady - ready
					stalls++
					ready = depReady
				}
				finish := ready + task.Cost + m.TaskOverhead
				clock[w] = finish
				finishTimes = append(finishTimes, finish)
				for _, a := range task.Writes {
					t := lastTouch[a]
					if finish > t.writeFinish {
						t.writeFinish = finish
					}
					lastTouch[a] = t
				}
				for _, a := range task.Reads {
					t := lastTouch[a]
					if finish > t.readFinish {
						t.readFinish = finish
					}
					lastTouch[a] = t
				}
				// Checker consumes the request after the task finishes.
				if checker < finish {
					checker = finish
				}
				checker += m.CheckPerTask
			}
		}
		// Checkpoint: all workers and the checker synchronize.
		max := checker
		for _, c := range clock {
			if c > max {
				max = c
			}
		}
		for _, c := range clock {
			idle += max - c
		}
		segEnd := max + m.CheckpointCost

		// Injected misspeculation: the segment rolls back and re-executes
		// with non-speculative barriers.
		if cfg.MisspecEpoch >= seg && cfg.MisspecEpoch < end {
			sub := &Trace{Epochs: tr.Epochs[seg:end]}
			re := SimBarrier(sub, nw, m)
			segEnd += re.Makespan
			idle += re.Idle
		}
		now = segEnd
	}
	return Result{Makespan: now, Idle: idle, Threads: nw + 1, Stalls: stalls}
}

package sim

import (
	"testing"
	"testing/quick"
)

// uniformTrace builds epochs × tasksPerEpoch independent tasks of the given
// cost.
func uniformTrace(epochs, tasksPerEpoch int, cost int64) *Trace {
	tr := &Trace{Name: "uniform"}
	for e := 0; e < epochs; e++ {
		ep := Epoch{}
		for t := 0; t < tasksPerEpoch; t++ {
			ep.Tasks = append(ep.Tasks, Task{Cost: cost})
		}
		tr.Epochs = append(tr.Epochs, ep)
	}
	return tr
}

// chainTrace builds epochs where every task writes a per-index cell, so
// task t of each epoch conflicts with task t of the previous epoch.
func chainTrace(epochs, tasksPerEpoch int, cost int64) *Trace {
	tr := &Trace{Name: "chain"}
	for e := 0; e < epochs; e++ {
		ep := Epoch{}
		for t := 0; t < tasksPerEpoch; t++ {
			ep.Tasks = append(ep.Tasks, Task{Cost: cost, Writes: []uint64{uint64(t)}})
		}
		tr.Epochs = append(tr.Epochs, ep)
	}
	return tr
}

func TestSeqTime(t *testing.T) {
	tr := uniformTrace(10, 8, 100)
	if got := tr.SeqTime(); got != 10*8*100 {
		t.Fatalf("SeqTime = %d, want %d", got, 8000)
	}
	tr.Epochs[0].SeqCost = 50
	if got := tr.SeqTime(); got != 8050 {
		t.Fatalf("SeqTime with serial = %d, want 8050", got)
	}
	if tr.Tasks() != 80 {
		t.Fatalf("Tasks = %d", tr.Tasks())
	}
}

func TestBarrierNeverBeatsIdealSpeedup(t *testing.T) {
	m := DefaultModel()
	tr := uniformTrace(100, 48, 5000)
	seq := tr.SeqTime()
	for threads := 2; threads <= 24; threads += 2 {
		r := SimBarrier(tr, threads, m)
		if s := r.Speedup(seq); s > float64(threads) {
			t.Fatalf("threads=%d speedup %.2f exceeds ideal", threads, s)
		}
	}
}

func TestBarrierOverheadGrowsWithThreads(t *testing.T) {
	m := DefaultModel()
	// Few tasks per epoch (the CG regime, Table 5.3: 9 tasks/epoch): at
	// high thread counts barrier execution must collapse.
	tr := uniformTrace(5000, 9, 4000)
	r8 := SimBarrier(tr, 8, m)
	r24 := SimBarrier(tr, 24, m)
	frac8 := float64(r8.Idle) / float64(r8.Makespan*int64(r8.Threads))
	frac24 := float64(r24.Idle) / float64(r24.Makespan*int64(r24.Threads))
	if frac24 <= frac8 {
		t.Fatalf("idle fraction must grow with threads: %f vs %f", frac8, frac24)
	}
}

func TestDomoreBeatsBarrierOnManySmallEpochs(t *testing.T) {
	m := DefaultModel()
	tr := uniformTrace(2000, 9, 4000)
	seq := tr.SeqTime()
	bar := SimBarrier(tr, 24, m)
	dom := SimDomore(tr, 23, m) // 23 workers + 1 scheduler = 24 threads
	if dom.Speedup(seq) <= bar.Speedup(seq) {
		t.Fatalf("DOMORE %.2f must beat barrier %.2f in the frequent-invocation regime",
			dom.Speedup(seq), bar.Speedup(seq))
	}
}

func TestDomoreRespectsDependences(t *testing.T) {
	m := CostModel{} // zero overheads: pure dependence structure
	// Every epoch's task 0 writes address 0: those tasks serialize.
	tr := &Trace{}
	const epochs = 50
	for e := 0; e < epochs; e++ {
		tr.Epochs = append(tr.Epochs, Epoch{Tasks: []Task{{Cost: 100, Writes: []uint64{0}}}})
	}
	r := SimDomore(tr, 8, m)
	if r.Makespan < 100*epochs {
		t.Fatalf("makespan %d below serialized chain %d", r.Makespan, 100*epochs)
	}
}

func TestDomoreReadsDoNotSerialize(t *testing.T) {
	m := CostModel{}
	// All tasks read address 0 but never write it: fully parallel.
	tr := &Trace{}
	for e := 0; e < 10; e++ {
		ep := Epoch{}
		for t := 0; t < 8; t++ {
			ep.Tasks = append(ep.Tasks, Task{Cost: 100, Reads: []uint64{0}})
		}
		tr.Epochs = append(tr.Epochs, ep)
	}
	r := SimDomore(tr, 8, m)
	if r.Stalls != 0 {
		t.Fatalf("read-only sharing caused %d stalls", r.Stalls)
	}
}

func TestSpecCrossBeatsBarrier(t *testing.T) {
	m := DefaultModel()
	tr := uniformTrace(2000, 24, 4000)
	seq := tr.SeqTime()
	bar := SimBarrier(tr, 24, m)
	spec := SimSpecCross(tr, SpecConfig{Workers: 23, CheckpointEvery: 1000}, m)
	if spec.Speedup(seq) <= bar.Speedup(seq) {
		t.Fatalf("SPECCROSS %.2f must beat barrier %.2f", spec.Speedup(seq), bar.Speedup(seq))
	}
}

func TestSpecCrossRespectsCrossEpochDeps(t *testing.T) {
	m := CostModel{}
	tr := chainTrace(40, 1, 100)
	r := SimSpecCross(tr, SpecConfig{Workers: 4, CheckpointEvery: 1000}, m)
	if r.Makespan < 40*100 {
		t.Fatalf("makespan %d below dependence chain %d", r.Makespan, 4000)
	}
}

func TestMisspeculationAddsReexecution(t *testing.T) {
	m := DefaultModel()
	tr := uniformTrace(100, 24, 4000)
	clean := SimSpecCross(tr, SpecConfig{Workers: 8, CheckpointEvery: 10}, m)
	faulty := SimSpecCross(tr, SpecConfig{Workers: 8, CheckpointEvery: 10, MisspecEpoch: 55}, m)
	if faulty.Makespan <= clean.Makespan {
		t.Fatalf("injected misspeculation must cost time: %d vs %d", faulty.Makespan, clean.Makespan)
	}
}

func TestMoreCheckpointsCheaperRecovery(t *testing.T) {
	m := DefaultModel()
	tr := uniformTrace(200, 24, 4000)
	// With misspeculation, frequent checkpoints bound the re-executed
	// segment; compare recovery overhead at 2 vs 50 checkpoints.
	few := SimSpecCross(tr, SpecConfig{Workers: 8, CheckpointEvery: 100, MisspecEpoch: 99}, m)
	many := SimSpecCross(tr, SpecConfig{Workers: 8, CheckpointEvery: 4, MisspecEpoch: 99}, m)
	if many.Makespan >= few.Makespan {
		t.Fatalf("frequent checkpoints should cap re-execution: %d vs %d", many.Makespan, few.Makespan)
	}
}

func TestCheckerBottleneckAtHighThreadCounts(t *testing.T) {
	m := DefaultModel()
	// Tiny tasks: the single checker (CheckPerTask each) cannot keep up
	// once workers outnumber cost/CheckPerTask — §5.2's observed limit.
	tr := uniformTrace(500, 96, 600)
	seq := tr.SeqTime()
	s12 := SimSpecCross(tr, SpecConfig{Workers: 12, CheckpointEvery: 1000}, m)
	s23 := SimSpecCross(tr, SpecConfig{Workers: 23, CheckpointEvery: 1000}, m)
	gain := s23.Speedup(seq) / s12.Speedup(seq)
	if gain > 1.3 {
		t.Fatalf("checker should bound scaling: 12→23 workers gained %.2fx", gain)
	}
}

func TestSpecDistanceGatingSlowsDown(t *testing.T) {
	m := CostModel{}
	tr := uniformTrace(50, 8, 100)
	free := SimSpecCross(tr, SpecConfig{Workers: 8, CheckpointEvery: 1000}, m)
	gated := SimSpecCross(tr, SpecConfig{Workers: 8, CheckpointEvery: 1000, SpecDistance: 2}, m)
	if gated.Makespan < free.Makespan {
		t.Fatalf("tight gating cannot be faster: %d vs %d", gated.Makespan, free.Makespan)
	}
}

func TestInvalidThreadCountsPanic(t *testing.T) {
	tr := uniformTrace(1, 1, 1)
	for name, f := range map[string]func(){
		"barrier": func() { SimBarrier(tr, 0, DefaultModel()) },
		"domore":  func() { SimDomore(tr, 0, DefaultModel()) },
		"spec":    func() { SimSpecCross(tr, SpecConfig{}, DefaultModel()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with 0 threads did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: makespan is at least the critical path (max single task + seq
// costs) and at most the sequential time plus total overheads.
func TestQuickMakespanBounds(t *testing.T) {
	m := DefaultModel()
	prop := func(epochs, tasks, threads uint8, cost uint16) bool {
		e := int(epochs%10) + 1
		k := int(tasks%12) + 1
		n := int(threads%8) + 1
		c := int64(cost%5000) + 1
		tr := uniformTrace(e, k, c)
		seq := tr.SeqTime()
		for _, r := range []Result{
			SimBarrier(tr, n, m),
			SimDomore(tr, n, m),
			SimSpecCross(tr, SpecConfig{Workers: n, CheckpointEvery: 4}, m),
		} {
			if r.Makespan < c { // at least one task's cost
				return false
			}
			if r.Speedup(seq) > float64(n)+0.01 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

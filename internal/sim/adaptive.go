package sim

import (
	"fmt"

	"crossinv/internal/runtime/adaptive"
)

// This file models the adaptive hybrid runtime (internal/runtime/adaptive)
// in virtual time, so the 2–24-core scalability figures can include the
// engine-selecting controller next to the static engines. The simulation
// drives the *same* Policy implementations the real controller uses: each
// window of epochs is simulated under the current engine, the monitors'
// signals are derived from the window's trace (manifest-dependence rate for
// DOMORE windows; misspeculation for SPECCROSS windows, decided by the
// §4.4 profitability rule on the window's observed minimum dependence
// distance), and the policy picks the next window's engine.

// AdaptiveConfig tunes a simulated adaptive execution.
type AdaptiveConfig struct {
	// Threads is the total simulated core budget, matching the figures'
	// x-axis: barrier windows use Threads workers; DOMORE and SPECCROSS
	// windows use Threads-1 workers plus their scheduler/checker thread.
	Threads int
	// Window is the monitoring window in epochs (default 32).
	Window int
	// Policy picks each next window's engine (default adaptive.NewThreshold).
	Policy adaptive.Policy
	// Start is the first window's engine (default adaptive.EngineDomore).
	Start adaptive.Engine
	// Gate is the profitability threshold in tasks (§4.4): a SPECCROSS
	// window whose minimum cross-epoch dependence distance is below Gate
	// overlaps a conflicting pair and misspeculates — it pays the full
	// speculative attempt, rollback, and barrier re-execution. Windows at
	// or above Gate run misspeculation-free. Default Threads-1 (speculation
	// is profitable only when the distance covers the worker count).
	Gate int64
	// SpecDistance bounds the speculative range in clean windows (the
	// profiled distance the real runtime gates with); 0 means unbounded.
	SpecDistance int64
	// SwitchCost is the extra quiesce cost paid at each engine change — the
	// drain barrier leaving DOMORE or the checkpoint barrier leaving
	// SPECCROSS. Default BarrierBase + BarrierPerThread·Threads.
	SwitchCost int64
}

// WindowDecision logs one simulated window: what ran, what the monitors
// saw, and what it cost.
type WindowDecision struct {
	// Start and End delimit the window's epochs, [Start, End).
	Start, End int
	// Engine is the engine that executed the window.
	Engine adaptive.Engine
	// Makespan is the window's virtual-time cost (switch cost excluded).
	Makespan int64
	// ManifestRate is the window's manifest-dependence rate (DOMORE).
	ManifestRate float64
	// Misspeculated reports a window below the profitability gate (SPECCROSS).
	Misspeculated bool
}

// AdaptiveResult extends Result with the controller's decision log.
type AdaptiveResult struct {
	Result
	// Windows is the per-window log in execution order.
	Windows []WindowDecision
	// Switches counts engine changes at window boundaries.
	Switches int
	// EngineWindows counts windows per engine, indexed by adaptive.Engine.
	EngineWindows [adaptive.NumEngines]int
}

// SimAdaptive simulates the adaptive controller over the trace. Windows
// execute back to back — each window starts from a full quiesce, exactly
// like the real controller's window boundaries — so the makespan is the
// sum of window makespans plus switch costs.
func SimAdaptive(tr *Trace, cfg AdaptiveConfig, m CostModel) AdaptiveResult {
	if cfg.Threads <= 1 {
		panic(fmt.Sprintf("sim: adaptive needs at least 2 threads, got %d", cfg.Threads))
	}
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.Policy == nil {
		cfg.Policy = adaptive.NewThreshold()
	}
	if cfg.Gate == 0 {
		cfg.Gate = int64(cfg.Threads - 1)
	}
	if cfg.SwitchCost == 0 {
		cfg.SwitchCost = m.BarrierBase + m.BarrierPerThread*int64(cfg.Threads)
	}

	var res AdaptiveResult
	res.Threads = cfg.Threads
	engine := cfg.Start
	workers := cfg.Threads - 1

	for lo := 0; lo < len(tr.Epochs); {
		hi := lo + cfg.Window
		if hi > len(tr.Epochs) {
			hi = len(tr.Epochs)
		}
		sub := &Trace{Epochs: tr.Epochs[lo:hi]}
		dec := WindowDecision{Start: lo, End: hi, Engine: engine}
		sample := adaptive.Sample{Engine: engine, StartEpoch: lo, EndEpoch: hi, Tasks: int64(sub.Tasks())}

		var r Result
		switch engine {
		case adaptive.EngineBarrier:
			r = SimBarrier(sub, cfg.Threads, m)
		case adaptive.EngineDomore, adaptive.EngineDomoreSharded:
			// The sharded scheduler reproduces DOMORE's schedule exactly, so
			// its virtual-time model and monitor signal are DOMORE's.
			r = SimDomore(sub, workers, m)
			dec.ManifestRate = manifestRate(sub, workers)
			sample.ManifestRate = dec.ManifestRate
		case adaptive.EngineSpecCross:
			sc := SpecConfig{Workers: workers, CheckpointEvery: hi - lo, SpecDistance: cfg.SpecDistance}
			if minConflictDistance(sub) < cfg.Gate {
				// Below the profitability threshold: a conflicting pair
				// overlaps, the checker flags it, the window rolls back and
				// re-executes with barriers (modeled by the injected-fault
				// path of SimSpecCross).
				sc.MisspecEpoch = 1
				dec.Misspeculated = true
				sample.Misspeculated = true
			}
			r = SimSpecCross(sub, sc, m)
		default:
			panic(fmt.Sprintf("sim: unknown engine %v", engine))
		}

		dec.Makespan = r.Makespan
		res.Makespan += r.Makespan
		res.Idle += r.Idle
		res.Stalls += r.Stalls
		res.Windows = append(res.Windows, dec)
		res.EngineWindows[engine]++

		next := cfg.Policy.Decide(sample)
		if next < 0 || next >= adaptive.NumEngines {
			panic(fmt.Sprintf("sim: policy returned unknown engine %v", next))
		}
		if next != engine {
			res.Switches++
			res.Makespan += cfg.SwitchCost
		}
		engine = next
		lo = hi
	}
	return res
}

// manifestRate derives the DOMORE monitor's signal from a window's trace:
// synchronization conditions forwarded per iteration, counting — like the
// scheduler of Algorithm 1 — one condition per accessed address whose last
// conflicting toucher (write on either side) ran on a different worker.
// The window starts from a fresh shadow store, as the real controller's
// DOMORE windows do.
func manifestRate(tr *Trace, workers int) float64 {
	type touch struct {
		lastWriter  int // worker of last writing toucher, -1 if none
		lastReader  int // worker of last reading toucher, -1 if none
		multiReader bool
	}
	last := map[uint64]*touch{}
	conds, tasks := int64(0), int64(0)
	iter := 0
	counted := map[uint64]bool{}
	for _, e := range tr.Epochs {
		for _, task := range e.Tasks {
			w := iter % workers
			iter++
			tasks++
			// At most one condition per (task, address): the scheduler
			// forwards one wait per conflicting shadow entry, and a task
			// reading and writing the same cell shares that entry.
			clear(counted)
			for _, a := range task.Reads {
				if t, ok := last[a]; ok && t.lastWriter >= 0 && t.lastWriter != w && !counted[a] {
					counted[a] = true
					conds++
				}
			}
			for _, a := range task.Writes {
				if t, ok := last[a]; ok && !counted[a] {
					if (t.lastWriter >= 0 && t.lastWriter != w) ||
						(t.lastReader >= 0 && (t.lastReader != w || t.multiReader)) {
						counted[a] = true
						conds++
					}
				}
			}
			for _, a := range task.Writes {
				t := last[a]
				if t == nil {
					t = &touch{lastWriter: -1, lastReader: -1}
					last[a] = t
				}
				t.lastWriter = w
				t.lastReader, t.multiReader = -1, false
			}
			for _, a := range task.Reads {
				t := last[a]
				if t == nil {
					t = &touch{lastWriter: -1, lastReader: -1}
					last[a] = t
				}
				if t.lastReader >= 0 && t.lastReader != w {
					t.multiReader = true
				}
				t.lastReader = w
			}
		}
	}
	if tasks == 0 {
		return 0
	}
	return float64(conds) / float64(tasks)
}

// NoConflictDistance is minConflictDistance's no-conflict sentinel, large
// enough to exceed any profitability gate.
const NoConflictDistance = int64(1) << 62

// minConflictDistance scans a window's trace for the minimum distance (in
// tasks) between two cross-epoch conflicting accesses — the quantity the
// §4.4 profiler measures. Returns NoConflictDistance when no cross-epoch
// conflict exists in the window.
func minConflictDistance(tr *Trace) int64 {
	type touch struct {
		writeIdx, readIdx     int64 // global index of last toucher per side, -1 if none
		writeEpoch, readEpoch int
	}
	last := map[uint64]*touch{}
	best := NoConflictDistance
	g := int64(0)
	upd := func(d int64) {
		if d < best {
			best = d
		}
	}
	for ei, e := range tr.Epochs {
		for _, task := range e.Tasks {
			for _, a := range task.Reads {
				if t, ok := last[a]; ok && t.writeIdx >= 0 && t.writeEpoch != ei {
					upd(g - t.writeIdx)
				}
			}
			for _, a := range task.Writes {
				if t, ok := last[a]; ok {
					if t.writeIdx >= 0 && t.writeEpoch != ei {
						upd(g - t.writeIdx)
					}
					if t.readIdx >= 0 && t.readEpoch != ei {
						upd(g - t.readIdx)
					}
				}
			}
			for _, a := range task.Writes {
				t := last[a]
				if t == nil {
					t = &touch{writeIdx: -1, readIdx: -1}
					last[a] = t
				}
				t.writeIdx, t.writeEpoch = g, ei
			}
			for _, a := range task.Reads {
				t := last[a]
				if t == nil {
					t = &touch{writeIdx: -1, readIdx: -1}
					last[a] = t
				}
				t.readIdx, t.readEpoch = g, ei
			}
			g++
		}
	}
	return best
}

// Package ast defines the abstract syntax tree of the loop-nest language.
//
// An LNL program is one function containing array declarations, scalar
// assignments, counted loops (for / parfor), and conditionals over integer
// expressions. parfor asserts that the programmer (or an earlier analysis)
// considers the loop's iterations independent within one invocation — the
// shape every benchmark in Table 5.1 exhibits; the crossinv pipeline still
// verifies the claim with its own dependence analysis.
package ast

import "crossinv/internal/lang/token"

// Node is any AST node.
type Node interface {
	Pos() token.Pos
}

// Program is a whole LNL compilation unit: `func name() { ... }`.
type Program struct {
	Name    string
	Arrays  []*ArrayDecl
	Body    []Stmt
	NamePos token.Pos
}

// Pos implements Node.
func (p *Program) Pos() token.Pos { return p.NamePos }

// ArrayDecl declares a shared array of a constant size: `var A[100]`.
type ArrayDecl struct {
	Name    string
	Size    Expr
	DeclPos token.Pos
}

// Pos implements Node.
func (d *ArrayDecl) Pos() token.Pos { return d.DeclPos }

// Stmt is a statement.
type Stmt interface {
	Node
	stmt()
}

// Assign stores RHS into an array element or scalar: `A[i] = e` or `x = e`.
type Assign struct {
	Target    string // array or scalar name
	Index     Expr   // nil for scalar assignment
	Value     Expr
	TargetPos token.Pos
}

// Pos implements Node.
func (a *Assign) Pos() token.Pos { return a.TargetPos }
func (a *Assign) stmt()          {}

// For is a counted loop `for i = lo .. hi { body }` iterating i in [lo, hi).
// Parallel marks parfor loops.
type For struct {
	Var      string
	Lo, Hi   Expr
	Body     []Stmt
	Parallel bool
	ForPos   token.Pos
}

// Pos implements Node.
func (f *For) Pos() token.Pos { return f.ForPos }
func (f *For) stmt()          {}

// If is a two-armed conditional `if cond { } else { }` (else optional).
type If struct {
	Cond  Expr
	Then  []Stmt
	Else  []Stmt
	IfPos token.Pos
}

// Pos implements Node.
func (i *If) Pos() token.Pos { return i.IfPos }
func (i *If) stmt()          {}

// Expr is an integer-valued expression.
type Expr interface {
	Node
	expr()
}

// Num is an integer literal.
type Num struct {
	Value  int64
	NumPos token.Pos
}

// Pos implements Node.
func (n *Num) Pos() token.Pos { return n.NumPos }
func (n *Num) expr()          {}

// Ref reads a scalar variable (a loop induction variable or assigned scalar).
type Ref struct {
	Name   string
	RefPos token.Pos
}

// Pos implements Node.
func (r *Ref) Pos() token.Pos { return r.RefPos }
func (r *Ref) expr()          {}

// Index reads an array element: `A[e]`.
type Index struct {
	Array  string
	Idx    Expr
	ArrPos token.Pos
}

// Pos implements Node.
func (x *Index) Pos() token.Pos { return x.ArrPos }
func (x *Index) expr()          {}

// Op is a binary operator.
type Op int

// Binary operators. Comparisons yield 0 or 1.
const (
	Add Op = iota
	Sub
	Mul
	Div
	Mod
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
)

var opNames = [...]string{"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">="}

// String returns the operator's source spelling.
func (o Op) String() string { return opNames[o] }

// Bin is a binary expression.
type Bin struct {
	Op   Op
	L, R Expr
	// OpPos is the operator token's position; diagnostics for the lowered
	// arithmetic instruction point here rather than at the left operand.
	OpPos token.Pos
}

// Pos implements Node. It prefers the operator's own position and falls
// back to the left operand for synthesized nodes without one.
func (b *Bin) Pos() token.Pos {
	if b.OpPos.Line != 0 {
		return b.OpPos
	}
	return b.L.Pos()
}
func (b *Bin) expr()          {}

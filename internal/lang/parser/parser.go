// Package parser builds loop-nest language ASTs by recursive descent.
//
// Grammar (EBNF; '#' comments, integers only):
//
//	program  = "func" ident "(" ")" block .
//	block    = "{" { decl | stmt } "}" .
//	decl     = "var" ident "[" expr "]" { "," ident "[" expr "]" } .
//	stmt     = assign | for | if .
//	assign   = ident [ "[" expr "]" ] "=" expr .
//	for      = ( "for" | "parfor" ) ident "=" expr ".." expr block .
//	if       = "if" expr block [ "else" block ] .
//	expr     = cmp .
//	cmp      = sum [ ( "=="|"!="|"<"|"<="|">"|">=" ) sum ] .
//	sum      = term { ( "+" | "-" ) term } .
//	term     = unary { ( "*" | "/" | "%" ) unary } .
//	unary    = [ "-" ] primary .
//	primary  = number | ident [ "[" expr "]" ] | "(" expr ")" .
package parser

import (
	"fmt"

	"crossinv/internal/lang/ast"
	"crossinv/internal/lang/lexer"
	"crossinv/internal/lang/token"
)

// Error is a syntax error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type parser struct {
	toks []token.Token
	pos  int
}

// Parse parses a complete LNL program.
func Parse(src string) (*ast.Program, error) {
	toks, err := lexer.New(src).All()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != token.EOF {
		return nil, p.errorf("unexpected %s after program end", p.cur())
	}
	return prog, nil
}

func (p *parser) cur() token.Token  { return p.toks[p.pos] }
func (p *parser) next() token.Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errorf(format string, args ...any) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	if p.cur().Kind != k {
		return token.Token{}, p.errorf("expected %q, found %s", k.String(), p.cur())
	}
	return p.next(), nil
}

func (p *parser) program() (*ast.Program, error) {
	if _, err := p.expect(token.Func); err != nil {
		return nil, err
	}
	name, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RParen); err != nil {
		return nil, err
	}
	prog := &ast.Program{Name: name.Lit, NamePos: name.Pos}
	body, decls, err := p.block(true)
	if err != nil {
		return nil, err
	}
	prog.Arrays = decls
	prog.Body = body
	return prog, nil
}

// block parses "{ ... }". Array declarations are only legal in the top-level
// block (allowDecls); LNL arrays are global to the program.
func (p *parser) block(allowDecls bool) ([]ast.Stmt, []*ast.ArrayDecl, error) {
	if _, err := p.expect(token.LBrace); err != nil {
		return nil, nil, err
	}
	var stmts []ast.Stmt
	var decls []*ast.ArrayDecl
	for p.cur().Kind != token.RBrace {
		if p.cur().Kind == token.EOF {
			return nil, nil, p.errorf("unterminated block")
		}
		if p.cur().Kind == token.Var {
			if !allowDecls {
				return nil, nil, p.errorf("array declarations are only allowed at the top level")
			}
			ds, err := p.varDecl()
			if err != nil {
				return nil, nil, err
			}
			decls = append(decls, ds...)
			continue
		}
		s, err := p.stmt()
		if err != nil {
			return nil, nil, err
		}
		stmts = append(stmts, s)
	}
	p.next() // consume '}'
	return stmts, decls, nil
}

func (p *parser) varDecl() ([]*ast.ArrayDecl, error) {
	pos := p.next().Pos // consume 'var'
	var decls []*ast.ArrayDecl
	for {
		name, err := p.expect(token.Ident)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.LBracket); err != nil {
			return nil, err
		}
		size, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RBracket); err != nil {
			return nil, err
		}
		decls = append(decls, &ast.ArrayDecl{Name: name.Lit, Size: size, DeclPos: pos})
		if p.cur().Kind != token.Comma {
			return decls, nil
		}
		p.next()
	}
}

func (p *parser) stmt() (ast.Stmt, error) {
	switch p.cur().Kind {
	case token.For, token.Parfor:
		return p.forStmt()
	case token.If:
		return p.ifStmt()
	case token.Ident:
		return p.assign()
	default:
		return nil, p.errorf("expected statement, found %s", p.cur())
	}
}

func (p *parser) forStmt() (ast.Stmt, error) {
	kw := p.next()
	v, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Assign); err != nil {
		return nil, err
	}
	lo, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.DotDot); err != nil {
		return nil, err
	}
	hi, err := p.expr()
	if err != nil {
		return nil, err
	}
	body, _, err := p.block(false)
	if err != nil {
		return nil, err
	}
	return &ast.For{
		Var: v.Lit, Lo: lo, Hi: hi, Body: body,
		Parallel: kw.Kind == token.Parfor, ForPos: kw.Pos,
	}, nil
}

func (p *parser) ifStmt() (ast.Stmt, error) {
	pos := p.next().Pos
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	then, _, err := p.block(false)
	if err != nil {
		return nil, err
	}
	var els []ast.Stmt
	if p.cur().Kind == token.Else {
		p.next()
		els, _, err = p.block(false)
		if err != nil {
			return nil, err
		}
	}
	return &ast.If{Cond: cond, Then: then, Else: els, IfPos: pos}, nil
}

func (p *parser) assign() (ast.Stmt, error) {
	name := p.next()
	var idx ast.Expr
	if p.cur().Kind == token.LBracket {
		p.next()
		var err error
		idx, err = p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RBracket); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(token.Assign); err != nil {
		return nil, err
	}
	val, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &ast.Assign{Target: name.Lit, Index: idx, Value: val, TargetPos: name.Pos}, nil
}

var cmpOps = map[token.Kind]ast.Op{
	token.EQ: ast.Eq, token.NE: ast.Ne, token.LT: ast.Lt,
	token.LE: ast.Le, token.GT: ast.Gt, token.GE: ast.Ge,
}

func (p *parser) expr() (ast.Expr, error) {
	l, err := p.sum()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[p.cur().Kind]; ok {
		opPos := p.next().Pos
		r, err := p.sum()
		if err != nil {
			return nil, err
		}
		return &ast.Bin{Op: op, L: l, R: r, OpPos: opPos}, nil
	}
	return l, nil
}

func (p *parser) sum() (ast.Expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.Op
		switch p.cur().Kind {
		case token.Plus:
			op = ast.Add
		case token.Minus:
			op = ast.Sub
		default:
			return l, nil
		}
		opPos := p.next().Pos
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		l = &ast.Bin{Op: op, L: l, R: r, OpPos: opPos}
	}
}

func (p *parser) term() (ast.Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.Op
		switch p.cur().Kind {
		case token.Star:
			op = ast.Mul
		case token.Slash:
			op = ast.Div
		case token.Percent:
			op = ast.Mod
		default:
			return l, nil
		}
		opPos := p.next().Pos
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &ast.Bin{Op: op, L: l, R: r, OpPos: opPos}
	}
}

func (p *parser) unary() (ast.Expr, error) {
	if p.cur().Kind == token.Minus {
		pos := p.next().Pos
		e, err := p.primary()
		if err != nil {
			return nil, err
		}
		return &ast.Bin{Op: ast.Sub, L: &ast.Num{Value: 0, NumPos: pos}, R: e, OpPos: pos}, nil
	}
	return p.primary()
}

func (p *parser) primary() (ast.Expr, error) {
	switch p.cur().Kind {
	case token.Number:
		t := p.next()
		var v int64
		for _, c := range t.Lit {
			v = v*10 + int64(c-'0')
		}
		return &ast.Num{Value: v, NumPos: t.Pos}, nil
	case token.Ident:
		t := p.next()
		if p.cur().Kind == token.LBracket {
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RBracket); err != nil {
				return nil, err
			}
			return &ast.Index{Array: t.Lit, Idx: idx, ArrPos: t.Pos}, nil
		}
		return &ast.Ref{Name: t.Lit, RefPos: t.Pos}, nil
	case token.LParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errorf("expected expression, found %s", p.cur())
	}
}

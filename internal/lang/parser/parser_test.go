package parser

import (
	"strings"
	"testing"

	"crossinv/internal/lang/ast"
)

const fig13 = `
# The Fig 1.3 program: two parallel inner loops under a timestep loop.
func main() {
  var A[100], B[101]
  for t = 0 .. 10 {
    parfor i = 0 .. 100 {
      A[i] = B[i] + B[i+1]
    }
    parfor j = 1 .. 101 {
      B[j] = A[j-1] * A[j] + j
    }
  }
}
`

func TestParseFig13Shape(t *testing.T) {
	prog, err := Parse(fig13)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "main" {
		t.Fatalf("Name = %q", prog.Name)
	}
	if len(prog.Arrays) != 2 {
		t.Fatalf("arrays = %d, want 2", len(prog.Arrays))
	}
	if len(prog.Body) != 1 {
		t.Fatalf("top-level statements = %d, want 1", len(prog.Body))
	}
	outer, ok := prog.Body[0].(*ast.For)
	if !ok || outer.Parallel {
		t.Fatalf("outer statement = %T parallel=%v, want sequential For", prog.Body[0], outer.Parallel)
	}
	if len(outer.Body) != 2 {
		t.Fatalf("inner loops = %d, want 2", len(outer.Body))
	}
	for i, s := range outer.Body {
		inner, ok := s.(*ast.For)
		if !ok || !inner.Parallel {
			t.Fatalf("inner %d = %T, want parfor", i, s)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse("func f() { x = 1 + 2 * 3 }")
	if err != nil {
		t.Fatal(err)
	}
	a := prog.Body[0].(*ast.Assign)
	bin := a.Value.(*ast.Bin)
	if bin.Op != ast.Add {
		t.Fatalf("top op = %v, want +", bin.Op)
	}
	r := bin.R.(*ast.Bin)
	if r.Op != ast.Mul {
		t.Fatalf("right op = %v, want *", r.Op)
	}
}

func TestParseUnaryMinus(t *testing.T) {
	prog, err := Parse("func f() { x = -5 + 1 }")
	if err != nil {
		t.Fatal(err)
	}
	a := prog.Body[0].(*ast.Assign)
	bin := a.Value.(*ast.Bin)
	l := bin.L.(*ast.Bin)
	if l.Op != ast.Sub {
		t.Fatalf("unary minus lowered to %v", l.Op)
	}
	if n, ok := l.L.(*ast.Num); !ok || n.Value != 0 {
		t.Fatal("unary minus should be 0 - x")
	}
}

func TestParseIfElse(t *testing.T) {
	prog, err := Parse(`func f() {
		var A[4]
		parfor i = 0 .. 4 {
			if A[i] > 2 {
				A[i] = 0
			} else {
				A[i] = 1
			}
		}
	}`)
	if err != nil {
		t.Fatal(err)
	}
	loop := prog.Body[0].(*ast.For)
	iff := loop.Body[0].(*ast.If)
	if len(iff.Then) != 1 || len(iff.Else) != 1 {
		t.Fatalf("then/else lengths %d/%d", len(iff.Then), len(iff.Else))
	}
	if _, ok := iff.Cond.(*ast.Bin); !ok {
		t.Fatalf("cond type %T", iff.Cond)
	}
}

func TestParseComparisonInCondition(t *testing.T) {
	prog, err := Parse("func f() { x = 0 if x <= 3 { x = 1 } }")
	if err != nil {
		t.Fatal(err)
	}
	iff := prog.Body[1].(*ast.If)
	if iff.Cond.(*ast.Bin).Op != ast.Le {
		t.Fatal("condition operator wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"missing func", "main() {}", "expected"},
		{"unterminated block", "func f() { x = 1", "unterminated"},
		{"nested var decl", "func f() { for i = 0 .. 2 { var A[3] } }", "top level"},
		{"bad expr", "func f() { x = + }", "expected expression"},
		{"missing dotdot", "func f() { for i = 0 , 3 { } }", "expected"},
		{"trailing tokens", "func f() { } garbage", "after program end"},
		{"array without index on lhs needs idx expr", "func f() { var A[3] A[ = 2 }", "expected expression"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestParseMultiArrayDecl(t *testing.T) {
	prog, err := Parse("func f() { var A[1], B[2], C[3] }")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Arrays) != 3 {
		t.Fatalf("arrays = %d, want 3", len(prog.Arrays))
	}
	names := []string{"A", "B", "C"}
	for i, d := range prog.Arrays {
		if d.Name != names[i] {
			t.Fatalf("array %d = %q, want %q", i, d.Name, names[i])
		}
	}
}

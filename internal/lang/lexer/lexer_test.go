package lexer

import (
	"testing"

	"crossinv/internal/lang/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, err := New(src).All()
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	ks := make([]token.Kind, len(toks))
	for i, tk := range toks {
		ks[i] = tk.Kind
	}
	return ks
}

func TestBasicTokens(t *testing.T) {
	got := kinds(t, "func main() { }")
	want := []token.Kind{token.Func, token.Ident, token.LParen, token.RParen, token.LBrace, token.RBrace, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	got := kinds(t, "+ - * / % == != < <= > >= = ..")
	want := []token.Kind{
		token.Plus, token.Minus, token.Star, token.Slash, token.Percent,
		token.EQ, token.NE, token.LT, token.LE, token.GT, token.GE,
		token.Assign, token.DotDot, token.EOF,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKeywordsVsIdents(t *testing.T) {
	toks, err := New("for parfor forx _tmp if else var").All()
	if err != nil {
		t.Fatal(err)
	}
	want := []token.Kind{token.For, token.Parfor, token.Ident, token.Ident, token.If, token.Else, token.Var, token.EOF}
	for i := range want {
		if toks[i].Kind != want[i] {
			t.Fatalf("token %d = %v, want %v", i, toks[i].Kind, want[i])
		}
	}
	if toks[2].Lit != "forx" || toks[3].Lit != "_tmp" {
		t.Fatalf("identifier literals wrong: %q %q", toks[2].Lit, toks[3].Lit)
	}
}

func TestNumbersAndPositions(t *testing.T) {
	toks, err := New("a = 42\nb = 7").All()
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Lit != "42" || toks[2].Kind != token.Number {
		t.Fatalf("number token = %v", toks[2])
	}
	if toks[3].Pos.Line != 2 || toks[3].Pos.Col != 1 {
		t.Fatalf("position of b = %v, want 2:1", toks[3].Pos)
	}
}

func TestCommentsSkipped(t *testing.T) {
	got := kinds(t, "x # whole trailing comment = 1\n= 2 # another")
	want := []token.Kind{token.Ident, token.Assign, token.Number, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestInvalidCharacter(t *testing.T) {
	if _, err := New("a @ b").All(); err == nil {
		t.Fatal("expected error for '@'")
	}
}

func TestLoneDotAndBang(t *testing.T) {
	if _, err := New("a . b").All(); err == nil {
		t.Fatal("expected error for lone '.'")
	}
	if _, err := New("a ! b").All(); err == nil {
		t.Fatal("expected error for lone '!'")
	}
}

func TestErrorPosition(t *testing.T) {
	_, err := New("ok\n  @").All()
	if err == nil {
		t.Fatal("expected error")
	}
	le, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if le.Pos.Line != 2 || le.Pos.Col != 3 {
		t.Fatalf("error position %v, want 2:3", le.Pos)
	}
}

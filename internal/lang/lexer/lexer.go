// Package lexer tokenizes loop-nest language source text.
package lexer

import (
	"fmt"

	"crossinv/internal/lang/token"
)

// Lexer scans LNL source into tokens. Comments run from '#' to end of line.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Error is a lexical error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		switch l.peek() {
		case ' ', '\t', '\r', '\n':
			l.advance()
		case '#':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isLetter(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// Next returns the next token, or an error on an invalid byte.
func (l *Lexer) Next() (token.Token, error) {
	l.skipSpaceAndComments()
	pos := token.Pos{Line: l.line, Col: l.col}
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}, nil
	}
	c := l.advance()
	switch {
	case isDigit(c):
		start := l.off - 1
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		return token.Token{Kind: token.Number, Lit: l.src[start:l.off], Pos: pos}, nil
	case isLetter(c):
		start := l.off - 1
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		lit := l.src[start:l.off]
		if k, ok := token.Keywords[lit]; ok {
			return token.Token{Kind: k, Lit: lit, Pos: pos}, nil
		}
		return token.Token{Kind: token.Ident, Lit: lit, Pos: pos}, nil
	}
	mk := func(k token.Kind) (token.Token, error) {
		return token.Token{Kind: k, Pos: pos}, nil
	}
	switch c {
	case '(':
		return mk(token.LParen)
	case ')':
		return mk(token.RParen)
	case '{':
		return mk(token.LBrace)
	case '}':
		return mk(token.RBrace)
	case '[':
		return mk(token.LBracket)
	case ']':
		return mk(token.RBracket)
	case ',':
		return mk(token.Comma)
	case '+':
		return mk(token.Plus)
	case '-':
		return mk(token.Minus)
	case '*':
		return mk(token.Star)
	case '/':
		return mk(token.Slash)
	case '%':
		return mk(token.Percent)
	case '.':
		if l.peek() == '.' {
			l.advance()
			return mk(token.DotDot)
		}
		return token.Token{}, &Error{Pos: pos, Msg: "expected '..'"}
	case '=':
		if l.peek() == '=' {
			l.advance()
			return mk(token.EQ)
		}
		return mk(token.Assign)
	case '!':
		if l.peek() == '=' {
			l.advance()
			return mk(token.NE)
		}
		return token.Token{}, &Error{Pos: pos, Msg: "expected '!='"}
	case '<':
		if l.peek() == '=' {
			l.advance()
			return mk(token.LE)
		}
		return mk(token.LT)
	case '>':
		if l.peek() == '=' {
			l.advance()
			return mk(token.GE)
		}
		return mk(token.GT)
	}
	return token.Token{}, &Error{Pos: pos, Msg: fmt.Sprintf("invalid character %q", c)}
}

// All tokenizes the whole input, ending with an EOF token.
func (l *Lexer) All() ([]token.Token, error) {
	var toks []token.Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, nil
		}
	}
}

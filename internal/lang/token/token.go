// Package token defines the lexical tokens of the loop-nest language (LNL),
// the small input language the crossinv compiler pipeline operates on. LNL
// programs express exactly the program shape the paper targets: outer
// sequential loops containing parallelizable inner loops over arrays
// (Fig 1.3, Fig 3.1, Fig 4.2).
package token

import "fmt"

// Kind enumerates token kinds.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Number

	// Keywords.
	Func
	Var
	For
	Parfor
	If
	Else

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Comma
	Assign  // =
	DotDot  // ..
	Plus    // +
	Minus   // -
	Star    // *
	Slash   // /
	Percent // %
	EQ      // ==
	NE      // !=
	LT      // <
	LE      // <=
	GT      // >
	GE      // >=
)

var names = map[Kind]string{
	EOF: "EOF", Ident: "identifier", Number: "number",
	Func: "func", Var: "var", For: "for", Parfor: "parfor", If: "if", Else: "else",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Comma: ",", Assign: "=", DotDot: "..",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	EQ: "==", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">=",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps source spellings to keyword kinds.
var Keywords = map[string]Kind{
	"func": Func, "var": Var, "for": For, "parfor": Parfor, "if": If, "else": Else,
}

// Pos is a source position, 1-based.
type Pos struct {
	Line, Col int
}

// String formats the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexeme with its position.
type Token struct {
	Kind Kind
	Lit  string // literal text for Ident and Number
	Pos  Pos
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case Ident, Number:
		return fmt.Sprintf("%s %q", t.Kind, t.Lit)
	default:
		return fmt.Sprintf("%q", t.Kind.String())
	}
}

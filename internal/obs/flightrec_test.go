package obs

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"crossinv/internal/runtime/trace"
)

// spanEvents builds a tiny invocation's span skeleton on a real recorder
// so flight artifacts exercise the same event shapes the daemon retains.
func spanEvents(id string) []trace.Event {
	r := trace.NewRecorderCap(64)
	r.SetInvocation(id)
	lane := r.Lane(trace.LaneRequest)
	root := lane.BeginSpan(trace.SpanInvocation, 0)
	ex := lane.BeginSpan(trace.SpanExecute, root.ID())
	ex.End()
	root.End()
	return r.Events()
}

// TestDecisionLogRingAndFilter covers the journal: bounded retention,
// sequence stamping, and the per-invocation filter the -explain client
// uses.
func TestDecisionLogRingAndFilter(t *testing.T) {
	l := NewDecisionLog(4)
	for i := 0; i < 6; i++ {
		inv := "inv-a"
		if i%2 == 1 {
			inv = "inv-b"
		}
		l.Append(DecisionEntry{Invocation: inv, Window: i, Engine: "domore", Reason: "r"})
	}
	all := l.Snapshot("")
	if len(all) != 4 {
		t.Fatalf("retained %d entries, want 4", len(all))
	}
	if all[0].Window != 2 || all[3].Window != 5 {
		t.Errorf("ring order wrong: %+v", all)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq != all[i-1].Seq+1 {
			t.Errorf("non-consecutive seq: %+v", all)
		}
	}
	b := l.Snapshot("inv-b")
	if len(b) != 2 {
		t.Fatalf("filter returned %d entries, want 2", len(b))
	}
	for _, e := range b {
		if e.Invocation != "inv-b" {
			t.Errorf("filter leaked %+v", e)
		}
	}

	// Handler shape: schema + filter wiring.
	rr := httptest.NewRecorder()
	l.Handler()(rr, httptest.NewRequest("GET", "/debug/decisions?invocation=inv-b", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var doc struct {
		Schema  string          `json:"schema"`
		Total   int64           `json:"total"`
		Entries []DecisionEntry `json:"entries"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != DecisionsSchema || doc.Total != 6 || len(doc.Entries) != 2 {
		t.Errorf("doc = %+v", doc)
	}
}

// TestFlightRecorderTriggers covers each anomaly path: healthy
// invocations stay quiet; misspeculation, checker pressure, 5xx, and
// external admission timeouts dump; the dump artifacts are valid JSON
// and a tracecheck-clean Chrome file.
func TestFlightRecorderTriggers(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(FlightConfig{Cap: 8, Dir: dir, PressureMax: 10})

	if trig := f.Observe(FlightInvocation{ID: "inv-ok", Status: 200, DurNs: 1000, Tasks: 10}, nil); trig != "" {
		t.Fatalf("healthy invocation triggered %q", trig)
	}

	fullCalled := false
	trig := f.Observe(FlightInvocation{
		ID: "inv-bad", Status: 200, DurNs: 2000, Misspecs: 2, Tasks: 10,
		Events: spanEvents("inv-bad"),
	}, func() []trace.Event {
		fullCalled = true
		return spanEvents("inv-bad")
	})
	if trig != TriggerMisspec {
		t.Fatalf("misspec trigger = %q", trig)
	}
	if !fullCalled {
		t.Error("full-capture callback not invoked on trigger")
	}

	if trig := f.Observe(FlightInvocation{ID: "inv-press", Status: 200, Tasks: 10, Comparisons: 500}, nil); trig != TriggerCheckerPressure {
		t.Errorf("pressure trigger = %q", trig)
	}
	if trig := f.Observe(FlightInvocation{ID: "inv-500", Status: 500}, nil); trig != Trigger5xx {
		t.Errorf("5xx trigger = %q", trig)
	}
	f.RecordTrigger(TriggerAdmissionTimeout, "queue wait exceeded 100ms", "")

	dumps := f.Dumps()
	if len(dumps) != 4 {
		t.Fatalf("dumps = %d, want 4: %+v", len(dumps), dumps)
	}
	for _, d := range dumps {
		if d.Path == "" || d.TracePath == "" {
			t.Fatalf("dump %d missing artifact paths: %+v", d.Seq, d)
		}
		data, err := os.ReadFile(d.Path)
		if err != nil {
			t.Fatal(err)
		}
		var dump struct {
			Schema  string             `json:"schema"`
			Trigger string             `json:"trigger"`
			Window  []FlightInvocation `json:"window"`
		}
		if err := json.Unmarshal(data, &dump); err != nil {
			t.Fatalf("dump %s: %v", d.Path, err)
		}
		if dump.Schema != FlightSchema || dump.Trigger != d.Trigger {
			t.Errorf("dump doc = %+v", dump)
		}
		tdata, err := os.ReadFile(d.TracePath)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.ValidateChrome(tdata); err != nil {
			t.Errorf("dump %s: %v", d.TracePath, err)
		}
	}

	// The misspec dump's Chrome file names the anomalous invocation's
	// track and carries full spans in the JSON artifact.
	var misspec DumpInfo
	for _, d := range dumps {
		if d.Trigger == TriggerMisspec {
			misspec = d
		}
	}
	tdata, _ := os.ReadFile(misspec.TracePath)
	if !strings.Contains(string(tdata), "invocation inv-bad") {
		t.Error("chrome dump does not name the invocation track")
	}
	jdata, _ := os.ReadFile(misspec.Path)
	var dump flightDump
	if err := json.Unmarshal(jdata, &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.FullSpans) == 0 {
		t.Error("misspec dump has no full spans")
	}

	// Filenames follow the flightrec-<seq>-<trigger> convention.
	matches, _ := filepath.Glob(filepath.Join(dir, "flightrec-*-"+TriggerMisspec+".json"))
	if len(matches) != 1 {
		t.Errorf("misspec dump file not found: %v", matches)
	}
}

// TestFlightRecorderLatencyTrigger pins the p99 breach path: it needs
// MinSamples history, an over-budget invocation, and respects the
// cooldown between dumps.
func TestFlightRecorderLatencyTrigger(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{
		Cap: 64, LatencyBudget: time.Millisecond, MinSamples: 8,
		Cooldown: time.Hour, MisspecMin: -1, PressureMax: -1,
	})
	// Seed history entirely over budget so p99 breaches once judged.
	for i := 0; i < 7; i++ {
		if trig := f.Observe(FlightInvocation{Status: 200, DurNs: int64(2 * time.Millisecond)}, nil); trig != "" {
			t.Fatalf("triggered %q before MinSamples", trig)
		}
	}
	if trig := f.Observe(FlightInvocation{ID: "inv-slow", Status: 200, DurNs: int64(3 * time.Millisecond)}, nil); trig != TriggerLatencyP99 {
		t.Fatalf("latency trigger = %q", trig)
	}
	// Cooldown suppresses an immediate second dump.
	if trig := f.Observe(FlightInvocation{Status: 200, DurNs: int64(3 * time.Millisecond)}, nil); trig != "" {
		t.Errorf("cooldown did not suppress: %q", trig)
	}
}

// TestFlightRecorderHandler covers the /debug/flightrec JSON shape and
// the manual ?dump=1 path (in-memory only: no Dir configured).
func TestFlightRecorderHandler(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Cap: 4})
	f.Observe(FlightInvocation{ID: "inv-1", Status: 200, DurNs: 500, Spans: trace.SpansFromEvents(spanEvents("inv-1"))}, nil)

	rr := httptest.NewRecorder()
	f.Handler()(rr, httptest.NewRequest("GET", "/debug/flightrec?dump=1", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var doc flightDoc
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != FlightSchema || doc.Total != 1 || len(doc.Window) != 1 {
		t.Errorf("doc = %+v", doc)
	}
	if doc.Triggers[TriggerManual] != 1 || len(doc.Dumps) != 1 {
		t.Errorf("manual dump not recorded: %+v", doc)
	}
	if doc.Window[0].ID != "inv-1" || len(doc.Window[0].Spans) == 0 {
		t.Errorf("window entry lost spans: %+v", doc.Window[0])
	}
}

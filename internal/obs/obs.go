// Package obs is the live observability surface: an HTTP mux exposing the
// trace recorder's exact per-kind counters while engines run. It is the
// serving half of the observability layer — internal/runtime/trace records,
// obs exposes:
//
//	/metrics        Prometheus text exposition of Recorder.LiveMetrics
//	/summary        JSON of the live Summary (per-kind counts and sums)
//	/debug/pprof/*  standard pprof handlers; CPU profiles carry the
//	                engine/lane goroutine labels trace.Labeled sets, so
//	                profile samples attribute to scheduler/worker/checker
//
// Everything served here reads only the single-writer atomic counters
// (never the ring buffers), so scraping during a run is race-free; the
// tier-1 workload suites run engines under -race with live scrapes to
// keep it that way.
package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime"

	"crossinv/internal/runtime/trace"
)

// SummarySchema versions the /summary document; consumers check it
// before trusting field meanings.
const SummarySchema = "crossinv-summary/v1"

// Summary is the /summary JSON document: the live trace totals plus the
// non-zero per-kind counts and argument sums, keyed by kind name.
type Summary struct {
	Schema  string           `json:"schema"`
	Events  int64            `json:"events"`
	Dropped int64            `json:"dropped"`
	Lanes   int              `json:"lanes"`
	Counts  map[string]int64 `json:"counts"`
	Sums    map[string]int64 `json:"sums,omitempty"`
}

// MakeSummary converts a trace summary to its JSON form.
func MakeSummary(sum trace.Summary) Summary {
	out := Summary{
		Schema:  SummarySchema,
		Events:  sum.Events,
		Dropped: sum.Dropped,
		Lanes:   sum.Lanes,
		Counts:  map[string]int64{},
		Sums:    map[string]int64{},
	}
	for k := trace.Kind(0); k < trace.KindCount; k++ {
		if sum.Counts[k] != 0 {
			out.Counts[k.String()] = sum.Counts[k]
		}
		if sum.Sums[k] != 0 {
			out.Sums[k.String()] = sum.Sums[k]
		}
	}
	return out
}

// NewMux builds the observability mux over a recorder. decorate, when
// non-nil, runs on each /metrics scrape's registry before rendering, so
// the caller can add its own gauges (run counts, loop progress) next to
// the trace-derived ones.
func NewMux(rec *trace.Recorder, decorate func(*trace.Registry)) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		g := rec.LiveMetrics()
		g.SetGauge("process.goroutines", float64(runtime.NumGoroutine()))
		if decorate != nil {
			decorate(g)
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := g.WritePrometheus(w); err != nil {
			// Headers are gone; nothing useful to report beyond the log.
			return
		}
	})

	mux.HandleFunc("/summary", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(MakeSummary(rec.Summary()))
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("crossinv observability surface\n\n/metrics\n/summary\n/debug/pprof/\n"))
	})

	return mux
}

package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"crossinv/internal/runtime/trace"
)

// FlightSchema versions the /debug/flightrec document and the on-disk
// dump artifact.
const FlightSchema = "crossinv-flightrec/v1"

// Flight-recorder triggers. A dump carries the one that fired it.
const (
	TriggerMisspec          = "misspec-storm"
	TriggerCheckerPressure  = "checker-pressure"
	TriggerAdmissionTimeout = "admission-timeout"
	TriggerLatencyP99       = "latency-p99"
	Trigger5xx              = "5xx"
	TriggerManual           = "manual"
)

// FlightConfig tunes the always-on flight recorder.
type FlightConfig struct {
	// Cap is how many recent invocations the rolling window retains
	// (default 32).
	Cap int
	// Dir is where dump artifacts are written; empty disables disk dumps
	// (the in-memory window and /debug/flightrec still work).
	Dir string
	// MisspecMin is the per-invocation misspeculation count at or above
	// which the misspec-storm trigger fires (default 1; negative
	// disables).
	MisspecMin int64
	// PressureMax is the checker comparisons-per-task bound above which
	// the checker-pressure trigger fires (default 64; negative disables).
	PressureMax float64
	// LatencyBudget, when positive, arms the p99 trigger: an invocation
	// over budget while the observed p99 also exceeds it fires a dump.
	LatencyBudget time.Duration
	// MinSamples is how many latency observations must accumulate before
	// the p99 trigger is judged (default 32).
	MinSamples int
	// Cooldown is the minimum spacing between latency-p99 dumps, keeping
	// a sustained breach from dumping on every request (default 5s). The
	// other triggers are not throttled: they are rare by construction
	// and CI depends on a forced misspeculation always dumping.
	Cooldown time.Duration
}

func (c *FlightConfig) fill() {
	if c.Cap <= 0 {
		c.Cap = 32
	}
	if c.MisspecMin == 0 {
		c.MisspecMin = 1
	}
	if c.PressureMax == 0 {
		c.PressureMax = 64
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 32
	}
	if c.Cooldown == 0 {
		c.Cooldown = 5 * time.Second
	}
}

// FlightInvocation is one invocation's footprint in the rolling window:
// identity, outcome, the counters the triggers judge, its span events
// (cheap — a few dozen per request), and the decisions its adaptive run
// journaled. Spans is derived from Events at observation time so the
// JSON surface is self-contained.
type FlightInvocation struct {
	ID     string `json:"invocation"`
	Mode   string `json:"mode,omitempty"`
	Engine string `json:"engine,omitempty"`
	Cache  string `json:"cache,omitempty"`
	Status int    `json:"status"`
	DurNs  int64  `json:"dur_ns"`

	Misspecs        int64 `json:"misspecs,omitempty"`
	Tasks           int64 `json:"tasks,omitempty"`
	Comparisons     int64 `json:"comparisons,omitempty"`
	PrefilterChecks int64 `json:"prefilter_checks,omitempty"`
	PrefilterHits   int64 `json:"prefilter_hits,omitempty"`

	Spans     []trace.SpanInfo `json:"spans,omitempty"`
	Decisions []DecisionEntry  `json:"decisions,omitempty"`

	// Events backs the Chrome track of dump artifacts (span begin/end
	// plus whatever cheap events the caller retained); not serialized.
	Events []trace.Event `json:"-"`
}

// DumpInfo indexes one written dump artifact.
type DumpInfo struct {
	Seq        int    `json:"seq"`
	Trigger    string `json:"trigger"`
	Reason     string `json:"reason"`
	Invocation string `json:"invocation"`
	At         string `json:"at"`
	Path       string `json:"path,omitempty"`
	TracePath  string `json:"trace_path,omitempty"`
}

// FlightRecorder keeps a rolling window of recent invocations and dumps
// a self-contained artifact (JSON + Chrome trace) when an anomaly
// trigger fires. It is always on: the per-invocation cost is one ring
// slot of span events and a histogram observation; the full event
// capture only happens for the invocation that trips a trigger.
type FlightRecorder struct {
	cfg FlightConfig

	mu       sync.Mutex
	ring     []FlightInvocation
	next     int
	total    int64
	hist     trace.Histogram // invocation latency, ns
	triggers map[string]int64
	dumps    []DumpInfo
	seq      int
	lastP99  time.Time
}

// NewFlightRecorder returns a recorder with the config's gaps filled.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	cfg.fill()
	return &FlightRecorder{cfg: cfg, triggers: map[string]int64{}}
}

// Observe records one finished invocation, evaluates the anomaly
// triggers, and dumps if one fires. full, when non-nil, is called only
// on a trigger to capture the complete event rings of the anomalous
// invocation before its recorder is recycled. It returns the trigger
// that fired ("" for a healthy invocation).
func (f *FlightRecorder) Observe(fi FlightInvocation, full func() []trace.Event) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hist.Observe(fi.DurNs)
	f.total++
	if len(f.ring) < f.cfg.Cap {
		f.ring = append(f.ring, fi)
	} else {
		f.ring[f.next] = fi
		f.next = (f.next + 1) % f.cfg.Cap
	}

	trigger, reason := f.judge(fi)
	if trigger == "" {
		return ""
	}
	f.triggers[trigger]++
	var fullEvents []trace.Event
	if full != nil {
		fullEvents = full()
	}
	f.dumpLocked(trigger, reason, fi.ID, fullEvents)
	return trigger
}

// judge evaluates the per-invocation triggers; the caller holds f.mu.
func (f *FlightRecorder) judge(fi FlightInvocation) (trigger, reason string) {
	switch {
	case fi.Status >= 500:
		return Trigger5xx, fmt.Sprintf("status %d", fi.Status)
	case f.cfg.MisspecMin > 0 && fi.Misspecs >= f.cfg.MisspecMin:
		return TriggerMisspec, fmt.Sprintf("%d misspeculations (threshold %d)", fi.Misspecs, f.cfg.MisspecMin)
	case f.cfg.PressureMax > 0 && fi.Tasks > 0 && float64(fi.Comparisons)/float64(fi.Tasks) > f.cfg.PressureMax:
		return TriggerCheckerPressure, fmt.Sprintf("%.1f comparisons/task (threshold %.1f)",
			float64(fi.Comparisons)/float64(fi.Tasks), f.cfg.PressureMax)
	}
	if b := f.cfg.LatencyBudget; b > 0 && fi.DurNs > int64(b) && f.hist.Count >= int64(f.cfg.MinSamples) {
		if p99 := f.hist.Quantile(0.99); p99 > int64(b) && time.Since(f.lastP99) >= f.cfg.Cooldown {
			f.lastP99 = time.Now()
			return TriggerLatencyP99, fmt.Sprintf("invocation %s over budget %s with p99 %s",
				time.Duration(fi.DurNs), b, time.Duration(p99))
		}
	}
	return "", ""
}

// RecordTrigger fires an external trigger — the daemon calls it for
// admission-queue timeouts, where no invocation ever starts — dumping
// the current window.
func (f *FlightRecorder) RecordTrigger(trigger, reason, invocation string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.triggers[trigger]++
	f.dumpLocked(trigger, reason, invocation, nil)
}

// windowLocked returns the retained invocations oldest-first.
func (f *FlightRecorder) windowLocked() []FlightInvocation {
	out := make([]FlightInvocation, 0, len(f.ring))
	for i := 0; i < len(f.ring); i++ {
		out = append(out, f.ring[(f.next+i)%len(f.ring)])
	}
	return out
}

// flightDump is the on-disk JSON artifact: the trigger, the window at
// dump time, and (for invocation-scoped triggers) the full span list of
// the anomalous invocation.
type flightDump struct {
	Schema     string             `json:"schema"`
	Seq        int                `json:"seq"`
	Trigger    string             `json:"trigger"`
	Reason     string             `json:"reason"`
	Invocation string             `json:"invocation,omitempty"`
	At         string             `json:"at"`
	Window     []FlightInvocation `json:"window"`
	FullSpans  []trace.SpanInfo   `json:"full_spans,omitempty"`
}

// dumpLocked writes the JSON + Chrome artifacts; the caller holds f.mu.
// fullEvents, when present, are the complete rings of the triggering
// invocation and become its Chrome track in place of the span skeleton.
func (f *FlightRecorder) dumpLocked(trigger, reason, invocation string, fullEvents []trace.Event) {
	f.seq++
	info := DumpInfo{
		Seq: f.seq, Trigger: trigger, Reason: reason, Invocation: invocation,
		At: time.Now().UTC().Format(time.RFC3339Nano),
	}
	window := f.windowLocked()
	if f.cfg.Dir != "" {
		if err := os.MkdirAll(f.cfg.Dir, 0o755); err == nil {
			base := fmt.Sprintf("flightrec-%04d-%s", f.seq, trigger)
			jsonPath := filepath.Join(f.cfg.Dir, base+".json")
			dump := flightDump{
				Schema: FlightSchema, Seq: f.seq, Trigger: trigger, Reason: reason,
				Invocation: invocation, At: info.At, Window: window,
				FullSpans: trace.SpansFromEvents(fullEvents),
			}
			if data, err := json.MarshalIndent(dump, "", "  "); err == nil {
				if err := os.WriteFile(jsonPath, data, 0o644); err == nil {
					info.Path = jsonPath
				}
			}
			tracePath := filepath.Join(f.cfg.Dir, base+".trace.json")
			var procs []trace.ChromeProc
			for i, fi := range window {
				ev := fi.Events
				if fi.ID != "" && fi.ID == invocation && fullEvents != nil {
					ev = fullEvents
				}
				procs = append(procs, trace.ChromeProc{
					PID: i, Name: "invocation " + fi.ID, Events: ev,
				})
			}
			if tf, err := os.Create(tracePath); err == nil {
				if err := trace.WriteChromeProcs(tf, procs); err == nil {
					info.TracePath = tracePath
				}
				_ = tf.Close()
			}
		}
	}
	f.dumps = append(f.dumps, info)
	if len(f.dumps) > 64 {
		f.dumps = f.dumps[len(f.dumps)-64:]
	}
}

// Counters snapshots the flight recorder's /metrics contribution: total
// observed invocations, dumps written, and one counter per fired
// trigger.
func (f *FlightRecorder) Counters() map[string]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := map[string]int64{
		"flightrec.observed": f.total,
		"flightrec.dumps":    int64(f.seq),
	}
	for k, v := range f.triggers {
		out["flightrec.trigger."+k] = v
	}
	return out
}

// Dumps returns the index of written dumps, oldest first.
func (f *FlightRecorder) Dumps() []DumpInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]DumpInfo(nil), f.dumps...)
}

// flightDoc is the /debug/flightrec JSON document.
type flightDoc struct {
	Schema       string             `json:"schema"`
	Total        int64              `json:"total"`
	LatencyP50Ns int64              `json:"latency_p50_ns"`
	LatencyP99Ns int64              `json:"latency_p99_ns"`
	Triggers     map[string]int64   `json:"triggers"`
	Window       []FlightInvocation `json:"window"`
	Dumps        []DumpInfo         `json:"dumps"`
}

// Handler serves the rolling window, trigger counts, and dump index as
// JSON. `?dump=1` forces a manual dump first (and reports it), which is
// how an operator snapshots a live daemon without waiting for an
// anomaly.
func (f *FlightRecorder) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("dump") != "" {
			f.RecordTrigger(TriggerManual, "operator requested", "")
		}
		f.mu.Lock()
		doc := flightDoc{
			Schema:       FlightSchema,
			Total:        f.total,
			LatencyP50Ns: f.hist.Quantile(0.5),
			LatencyP99Ns: f.hist.Quantile(0.99),
			Triggers:     map[string]int64{},
			Window:       f.windowLocked(),
			Dumps:        append([]DumpInfo(nil), f.dumps...),
		}
		for k, v := range f.triggers {
			doc.Triggers[k] = v
		}
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	}
}

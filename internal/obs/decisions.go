package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"crossinv/internal/runtime/adaptive"
)

// DecisionsSchema versions the /debug/decisions document.
const DecisionsSchema = "crossinv-decisions/v1"

// DecisionEntry is one journaled adaptive-controller decision: the
// daemon converts each adaptive.Decision into this flat JSON form,
// stamped with the invocation that caused it. Fields mirror the
// audit record (see internal/runtime/adaptive.Decision).
type DecisionEntry struct {
	Seq        int64  `json:"seq"`
	At         string `json:"at"`
	Invocation string `json:"invocation"`
	Window     int    `json:"window"`
	StartEpoch int    `json:"start_epoch"`
	EndEpoch   int    `json:"end_epoch"`
	Engine     string `json:"engine"`
	Next       string `json:"next"`
	Switched   bool   `json:"switched"`

	Tasks            int64   `json:"tasks"`
	ManifestRate     float64 `json:"manifest_rate"`
	Misspeculated    bool    `json:"misspeculated"`
	CheckerPressure  float64 `json:"checker_pressure"`
	PrefilterHitRate float64 `json:"prefilter_hit_rate"`

	WindowNs   int64 `json:"window_ns"`
	BoundaryNs int64 `json:"boundary_ns"`

	Reason     string `json:"reason"`
	SeedSource string `json:"seed_source,omitempty"`
	PolicyLow  int    `json:"policy_low"`
	PolicyHold int    `json:"policy_hold"`
}

// DecisionFromAudit flattens one adaptive audit record into the
// journal's JSON form, stamped with the invocation that caused it. The
// daemon journals through it; `crossinv -explain` renders the same
// shape for local runs.
func DecisionFromAudit(invocation string, d adaptive.Decision) DecisionEntry {
	return DecisionEntry{
		Invocation:       invocation,
		Window:           d.Window,
		StartEpoch:       d.Sample.StartEpoch,
		EndEpoch:         d.Sample.EndEpoch,
		Engine:           d.Sample.Engine.String(),
		Next:             d.Next.String(),
		Switched:         d.Switched,
		Tasks:            d.Sample.Tasks,
		ManifestRate:     d.Sample.ManifestRate,
		Misspeculated:    d.Sample.Misspeculated,
		CheckerPressure:  d.Sample.CheckerPressure,
		PrefilterHitRate: d.Sample.PrefilterHitRate,
		WindowNs:         d.WindowNs,
		BoundaryNs:       d.BoundaryNs,
		Reason:           d.Reason,
		SeedSource:       d.SeedSource,
		PolicyLow:        d.PolicyLow,
		PolicyHold:       d.PolicyHold,
	}
}

// DecisionLog is the bounded in-memory journal behind /debug/decisions:
// a ring of the most recent entries, safe for concurrent append (request
// goroutines) and snapshot (scrapers, flight-recorder dumps).
type DecisionLog struct {
	mu   sync.Mutex
	cap  int
	buf  []DecisionEntry
	next int // ring write cursor
	n    int64
}

// DefaultDecisionCap is the journal depth NewDecisionLog(0) uses — a few
// hundred windows of history, enough to cover every window of the
// flight recorder's retained invocations.
const DefaultDecisionCap = 512

// NewDecisionLog returns a journal retaining the last cap entries
// (DefaultDecisionCap when cap <= 0).
func NewDecisionLog(cap int) *DecisionLog {
	if cap <= 0 {
		cap = DefaultDecisionCap
	}
	return &DecisionLog{cap: cap, buf: make([]DecisionEntry, 0, cap)}
}

// Append journals one decision, stamping its sequence number and wall
// time. The oldest entry is evicted once the ring is full.
func (l *DecisionLog) Append(e DecisionEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.n++
	e.Seq = l.n
	if e.At == "" {
		e.At = time.Now().UTC().Format(time.RFC3339Nano)
	}
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, e)
		return
	}
	l.buf[l.next] = e
	l.next = (l.next + 1) % l.cap
}

// Snapshot returns the retained entries oldest-first, filtered to one
// invocation when invocation is non-empty.
func (l *DecisionLog) Snapshot(invocation string) []DecisionEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]DecisionEntry, 0, len(l.buf))
	for i := 0; i < len(l.buf); i++ {
		e := l.buf[(l.next+i)%len(l.buf)]
		if invocation == "" || e.Invocation == invocation {
			out = append(out, e)
		}
	}
	return out
}

// decisionsDoc is the /debug/decisions JSON document.
type decisionsDoc struct {
	Schema  string          `json:"schema"`
	Total   int64           `json:"total"`
	Entries []DecisionEntry `json:"entries"`
}

// Handler serves the journal as JSON. `?invocation=<id>` filters to one
// request's decisions — what `crossinv -explain` fetches after a remote
// run.
func (l *DecisionLog) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		entries := l.Snapshot(r.URL.Query().Get("invocation"))
		l.mu.Lock()
		total := l.n
		l.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(decisionsDoc{Schema: DecisionsSchema, Total: total, Entries: entries})
	}
}

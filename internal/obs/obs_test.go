package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"crossinv/internal/runtime/domore"
	"crossinv/internal/runtime/trace"
	"crossinv/internal/workloads/cg"
)

// promSample matches one metric sample line; promMeta one comment line.
var (
	promSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="[^"]+"\})? (NaN|[+-]?[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?)$`)
	promMeta   = regexp.MustCompile(`^# (TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)|HELP [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?)$`)
)

// parsePrometheus validates the text exposition format line by line and
// returns the scalar samples (name → value, label-free lines only).
func parsePrometheus(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if m := promMeta.FindStringSubmatch(line); m != nil {
			if strings.HasPrefix(m[1], "TYPE ") {
				typed[strings.Fields(m[1])[1]] = true
			}
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("invalid exposition line %q", line)
			continue
		}
		if m[2] == "" {
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				t.Errorf("unparseable value in %q: %v", line, err)
				continue
			}
			samples[m[1]] = v
		}
	}
	if len(typed) == 0 {
		t.Error("no # TYPE lines in exposition output")
	}
	return samples
}

// TestMetricsMatchEngineStats scrapes /metrics after a completed DOMORE
// run and asserts the Prometheus counters agree with the engine's own
// Stats — the same exactness contract the workload suites assert for the
// raw Summary, held through the HTTP rendering path.
func TestMetricsMatchEngineStats(t *testing.T) {
	rec := trace.NewRecorder()
	w := cg.New(1)
	stats := domore.Run(w, domore.Options{Workers: 4, Trace: rec})
	if stats.Iterations == 0 {
		t.Fatal("no iterations scheduled")
	}

	srv := httptest.NewServer(NewMux(rec, func(g *trace.Registry) {
		g.SetGauge("serve.runs", 1)
	}))
	defer srv.Close()

	body := get(t, srv.URL+"/metrics")
	samples := parsePrometheus(t, body)

	for name, want := range map[string]int64{
		"crossinv_events_schedule_total":    stats.Iterations,
		"crossinv_events_dispatch_total":    stats.Dispatches,
		"crossinv_events_sync_cond_total":   stats.SyncConditions,
		"crossinv_events_stall_begin_total": stats.Stalls,
	} {
		got, ok := samples[name]
		if !ok {
			t.Errorf("missing metric %s", name)
			continue
		}
		if int64(got) != want {
			t.Errorf("%s = %v, engine Stats say %d", name, got, want)
		}
	}
	if _, ok := samples["crossinv_serve_runs"]; !ok {
		t.Error("decorate gauge crossinv_serve_runs not rendered")
	}
	if _, ok := samples["crossinv_process_goroutines"]; !ok {
		t.Error("missing crossinv_process_goroutines gauge")
	}

	var sum Summary
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/summary")), &sum); err != nil {
		t.Fatalf("/summary is not valid JSON: %v", err)
	}
	if sum.Counts["schedule"] != stats.Iterations {
		t.Errorf("/summary schedule count %d != Stats.Iterations %d", sum.Counts["schedule"], stats.Iterations)
	}
	if sum.Lanes == 0 || sum.Events == 0 {
		t.Errorf("/summary lanes/events = %d/%d, want non-zero", sum.Lanes, sum.Events)
	}

	if !strings.Contains(get(t, srv.URL+"/debug/pprof/"), "profile") {
		t.Error("/debug/pprof/ index does not list profiles")
	}
}

// TestScrapeDuringRun scrapes /metrics and /summary while an engine is
// emitting — the serve-while-running contract. The CI race pass runs this
// package under -race, so a reintroduced unsynchronized counter fails
// loudly here.
func TestScrapeDuringRun(t *testing.T) {
	rec := trace.NewRecorder()
	srv := httptest.NewServer(NewMux(rec, nil))
	defer srv.Close()

	done := make(chan domore.Stats, 1)
	go func() {
		w := cg.New(1)
		done <- domore.Run(w, domore.Options{Workers: 4, Trace: rec})
	}()

	var scrapes int
	for {
		select {
		case stats := <-done:
			if scrapes == 0 {
				t.Log("engine finished before first scrape; counters still verified below")
			}
			// Final scrape after quiesce must be exact.
			samples := parsePrometheus(t, get(t, srv.URL+"/metrics"))
			if got := int64(samples["crossinv_events_schedule_total"]); got != stats.Iterations {
				t.Errorf("post-run schedule count %d != %d", got, stats.Iterations)
			}
			return
		default:
			parsePrometheus(t, get(t, srv.URL+"/metrics"))
			get(t, srv.URL+"/summary")
			scrapes++
		}
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

package ir

import (
	"testing"

	"crossinv/internal/lang/parser"
)

// TestNoZeroPositions lowers a program exercising every construct (loops,
// parfors, conditionals, nested nests, unary minus, comparisons) and
// asserts every region instruction — and every loop and branch node —
// carries a source position, so diagnostics can always point at a line.
func TestNoZeroPositions(t *testing.T) {
	astProg, err := parser.Parse(`func f() {
		var A[64], B[64]
		for i = 0 .. 8 {
			s = i * 2 + 1
			parfor j = s .. s + 8 {
				if A[j] > -3 {
					A[j] = B[j] % 7 - s
				} else {
					for k = 0 .. 2 {
						B[j] = B[j] + k
					}
				}
			}
		}
	}`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Lower(astProg)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range p.Instrs {
		if in.Pos.Line == 0 {
			t.Errorf("instruction %d (%s) has no source position", in.ID, in)
		}
	}
	var walk func(nodes []Node)
	walk = func(nodes []Node) {
		for _, n := range nodes {
			switch n := n.(type) {
			case *Loop:
				if n.Pos.Line == 0 {
					t.Errorf("loop %q has no source position", n.Var)
				}
				walk(n.Body)
			case *If:
				if n.Pos.Line == 0 {
					t.Error("if node has no source position")
				}
				walk(n.Then)
				walk(n.Else)
			}
		}
	}
	walk(p.Body)
}

// TestBinOperatorPosition pins the operator-position threading: the lowered
// arithmetic instruction points at the operator token, not the left operand.
func TestBinOperatorPosition(t *testing.T) {
	astProg, err := parser.Parse(`func f() {
	var A[8]
	parfor i = 0 .. 8 {
		A[i] = A[i] + 3
	}
}`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Lower(astProg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, in := range p.Instrs {
		if in.Op == Add {
			found = true
			// "A[i] = A[i] + 3": the + sits on line 4 column 15, past the
			// left operand's column 10.
			if in.Pos.Line != 4 || in.Pos.Col != 15 {
				t.Errorf("add instruction at %s, want 4:15 (the operator token)", in.Pos)
			}
		}
	}
	if !found {
		t.Fatal("no Add instruction lowered")
	}
}

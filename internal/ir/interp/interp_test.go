package interp_test

import (
	"testing"

	"crossinv/internal/ir"
	"crossinv/internal/ir/interp"
	"crossinv/internal/lang/parser"
)

func run(t *testing.T, src string) *interp.Env {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := ir.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	env, err := interp.Run(p)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return env
}

func TestArithmetic(t *testing.T) {
	env := run(t, `func f() {
		var A[8]
		A[0] = 2 + 3 * 4
		A[1] = (2 + 3) * 4
		A[2] = 17 / 5
		A[3] = 17 % 5
		A[4] = 7 - 10
		A[5] = 3 / 0
		A[6] = 3 % 0
		A[7] = -4
	}`)
	want := []int64{14, 20, 3, 2, -3, 0, 0, -4}
	for i, w := range want {
		if got := env.Arrays["A"][i]; got != w {
			t.Errorf("A[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestComparisons(t *testing.T) {
	env := run(t, `func f() {
		var A[6]
		A[0] = 2 == 2
		A[1] = 2 != 2
		A[2] = 1 < 2
		A[3] = 2 <= 1
		A[4] = 3 > 1
		A[5] = 3 >= 4
	}`)
	want := []int64{1, 0, 1, 0, 1, 0}
	for i, w := range want {
		if got := env.Arrays["A"][i]; got != w {
			t.Errorf("A[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestLoopAndIf(t *testing.T) {
	env := run(t, `func f() {
		var A[10]
		for i = 0 .. 10 {
			if i % 2 == 0 {
				A[i] = i * 10
			} else {
				A[i] = 0 - i
			}
		}
	}`)
	for i := int64(0); i < 10; i++ {
		want := -i
		if i%2 == 0 {
			want = i * 10
		}
		if got := env.Arrays["A"][i]; got != want {
			t.Errorf("A[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestStencilProgram(t *testing.T) {
	// The Fig 1.3 program with checkable values.
	env := run(t, `func f() {
		var A[8], B[9]
		for k = 0 .. 9 { B[k] = k }
		for t = 0 .. 3 {
			parfor i = 0 .. 8 { A[i] = B[i] + B[i+1] }
			parfor j = 1 .. 9 { B[j] = A[j-1] + A[j-1] }
		}
	}`)
	// Golden values computed by direct simulation in Go.
	A := make([]int64, 8)
	B := make([]int64, 9)
	for k := range B {
		B[k] = int64(k)
	}
	for t2 := 0; t2 < 3; t2++ {
		for i := 0; i < 8; i++ {
			A[i] = B[i] + B[i+1]
		}
		for j := 1; j < 9; j++ {
			B[j] = A[j-1] + A[j-1]
		}
	}
	for i := range A {
		if env.Arrays["A"][i] != A[i] {
			t.Errorf("A[%d] = %d, want %d", i, env.Arrays["A"][i], A[i])
		}
	}
	for j := range B {
		if env.Arrays["B"][j] != B[j] {
			t.Errorf("B[%d] = %d, want %d", j, env.Arrays["B"][j], B[j])
		}
	}
}

func TestOutOfBoundsLoad(t *testing.T) {
	prog, err := parser.Parse("func f() { var A[3] x = A[5] }")
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := interp.Run(p); err == nil {
		t.Fatal("expected out-of-bounds error")
	}
}

func TestHooksObserveTraffic(t *testing.T) {
	prog, err := parser.Parse(`func f() {
		var A[4], B[4]
		parfor i = 0 .. 4 { A[i] = B[i] + 1 }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(prog)
	if err != nil {
		t.Fatal(err)
	}
	env := interp.NewEnv(p)
	var loads, stores []uint64
	env.Hooks.OnLoad = func(a uint64) { loads = append(loads, a) }
	env.Hooks.OnStore = func(a uint64) { stores = append(stores, a) }
	if err := env.Exec(p.Body); err != nil {
		t.Fatal(err)
	}
	if len(loads) != 4 || len(stores) != 4 {
		t.Fatalf("loads=%d stores=%d, want 4/4", len(loads), len(stores))
	}
	// B is laid out after A: loads at base(B)+i, stores at base(A)+i.
	for i := 0; i < 4; i++ {
		if loads[i] != p.Addr("B", int64(i)) {
			t.Errorf("load %d at %d, want %d", i, loads[i], p.Addr("B", int64(i)))
		}
		if stores[i] != p.Addr("A", int64(i)) {
			t.Errorf("store %d at %d, want %d", i, stores[i], p.Addr("A", int64(i)))
		}
	}
}

func TestForkSharesArraysNotScalars(t *testing.T) {
	prog, _ := parser.Parse("func f() { var A[2] x = 7 }")
	p, _ := ir.Lower(prog)
	env := interp.NewEnv(p)
	if err := env.Exec(p.Body); err != nil {
		t.Fatal(err)
	}
	f := env.Fork()
	if f.Vars["x"] != 7 {
		t.Fatal("fork must copy scalars")
	}
	f.Vars["x"] = 9
	if env.Vars["x"] != 7 {
		t.Fatal("fork scalars must be private")
	}
	f.Arrays["A"][0] = 5
	if env.Arrays["A"][0] != 5 {
		t.Fatal("fork must share arrays")
	}
}

func TestSnapshotRestore(t *testing.T) {
	prog, _ := parser.Parse("func f() { var A[3] A[0] = 1 A[1] = 2 }")
	p, _ := ir.Lower(prog)
	env, err := interp.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	snap := env.Snapshot()
	env.Arrays["A"][0] = 99
	env.Restore(snap)
	if env.Arrays["A"][0] != 1 {
		t.Fatalf("restore failed: A[0] = %d", env.Arrays["A"][0])
	}
}

func TestChecksumDistinguishesStates(t *testing.T) {
	prog, _ := parser.Parse("func f() { var A[4] A[2] = 5 }")
	p, _ := ir.Lower(prog)
	e1, _ := interp.Run(p)
	e2, _ := interp.Run(p)
	if e1.Checksum() != e2.Checksum() {
		t.Fatal("identical states must have identical checksums")
	}
	e2.Arrays["A"][0] = 1
	if e1.Checksum() == e2.Checksum() {
		t.Fatal("different states should (almost surely) differ in checksum")
	}
}

// Package interp executes crossinv IR. It is the sequential reference
// executor for compiled LNL programs, and — through its access hooks — the
// substrate the runtime engines drive: the DOMORE adapter interprets the
// sliced computeAddr program and the worker body per iteration, and the
// SPECCROSS adapter records every load/store into a task signature exactly
// where Algorithm 5 would have inserted spec_access calls.
package interp

import (
	"fmt"

	"crossinv/internal/ir"
)

// Hooks observe memory traffic during execution. Either hook may be nil.
type Hooks struct {
	// OnLoad fires before each array load with the flat address.
	OnLoad func(addr uint64)
	// OnStore fires before each array store with the flat address.
	OnStore func(addr uint64)
}

// Env is an execution environment: the program's arrays, scalar variables,
// and a register file. Environments are cheap to fork for worker-private
// register files while sharing arrays.
type Env struct {
	Prog   *ir.Program
	Arrays map[string][]int64
	Vars   map[string]int64
	Regs   []int64
	Hooks  Hooks
	// Steps counts executed instructions; the virtual-time trace exporter
	// uses it as the per-task cost measure.
	Steps int64
}

// NewEnv allocates a zeroed environment for the program.
func NewEnv(p *ir.Program) *Env {
	e := &Env{
		Prog:   p,
		Arrays: make(map[string][]int64, len(p.Arrays)),
		Vars:   map[string]int64{},
		Regs:   make([]int64, p.NumRegs),
	}
	for name, size := range p.Arrays {
		e.Arrays[name] = make([]int64, size)
	}
	return e
}

// Fork returns an environment sharing the receiver's arrays but with
// private scalars and registers — the per-worker state split MTCG performs
// (each thread owns its registers; shared memory stays shared).
func (e *Env) Fork() *Env {
	f := &Env{
		Prog:   e.Prog,
		Arrays: e.Arrays,
		Vars:   make(map[string]int64, len(e.Vars)),
		Regs:   make([]int64, len(e.Regs)),
		Hooks:  e.Hooks,
	}
	for k, v := range e.Vars {
		f.Vars[k] = v
	}
	return f
}

// Snapshot deep-copies the array state (the speculative state SPECCROSS
// checkpoints).
func (e *Env) Snapshot() map[string][]int64 {
	cp := make(map[string][]int64, len(e.Arrays))
	for name, a := range e.Arrays {
		c := make([]int64, len(a))
		copy(c, a)
		cp[name] = c
	}
	return cp
}

// Restore copies a snapshot back over the array state.
func (e *Env) Restore(snap map[string][]int64) {
	for name, c := range snap {
		copy(e.Arrays[name], c)
	}
}

// Checksum folds every array into one value, for cheap equivalence checks
// between execution strategies.
func (e *Env) Checksum() uint64 {
	var h uint64 = 1469598103934665603
	names := make([]string, 0, len(e.Arrays))
	for n := range e.Arrays {
		names = append(names, n)
	}
	// Sort for determinism.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, n := range names {
		for _, v := range e.Arrays[n] {
			h ^= uint64(v)
			h *= 1099511628211
		}
	}
	return h
}

// Exec runs a node sequence to completion.
func (e *Env) Exec(nodes []ir.Node) error {
	for _, n := range nodes {
		switch n := n.(type) {
		case *ir.Instr:
			if err := e.Step(n); err != nil {
				return err
			}
		case *ir.Loop:
			lo, hi, err := e.LoopBounds(n)
			if err != nil {
				return err
			}
			for i := lo; i < hi; i++ {
				e.Vars[n.Var] = i
				if err := e.Exec(n.Body); err != nil {
					return err
				}
			}
		case *ir.If:
			if err := e.ExecInstrs(n.Cond); err != nil {
				return err
			}
			if e.Regs[n.CondReg] != 0 {
				if err := e.Exec(n.Then); err != nil {
					return err
				}
			} else if err := e.Exec(n.Else); err != nil {
				return err
			}
		}
	}
	return nil
}

// LoopBounds evaluates a loop's bound sequences and returns [lo, hi).
func (e *Env) LoopBounds(l *ir.Loop) (lo, hi int64, err error) {
	if err := e.ExecInstrs(l.Lo); err != nil {
		return 0, 0, err
	}
	if err := e.ExecInstrs(l.Hi); err != nil {
		return 0, 0, err
	}
	return e.Regs[l.LoReg], e.Regs[l.HiReg], nil
}

// ExecInstrs runs a straight-line instruction sequence.
func (e *Env) ExecInstrs(instrs []*ir.Instr) error {
	for _, in := range instrs {
		if err := e.Step(in); err != nil {
			return err
		}
	}
	return nil
}

// OOBError reports an out-of-bounds array access.
type OOBError struct {
	Array string
	Index int64
	Size  int64
}

// Error implements error.
func (e *OOBError) Error() string {
	return fmt.Sprintf("index %d out of range for array %s[%d]", e.Index, e.Array, e.Size)
}

// Step executes one instruction.
func (e *Env) Step(in *ir.Instr) error {
	e.Steps++
	switch in.Op {
	case ir.Const:
		e.Regs[in.Dst] = in.Imm
	case ir.Add:
		e.Regs[in.Dst] = e.Regs[in.A] + e.Regs[in.B]
	case ir.Sub:
		e.Regs[in.Dst] = e.Regs[in.A] - e.Regs[in.B]
	case ir.Mul:
		e.Regs[in.Dst] = e.Regs[in.A] * e.Regs[in.B]
	case ir.Div:
		if e.Regs[in.B] == 0 {
			e.Regs[in.Dst] = 0
		} else {
			e.Regs[in.Dst] = e.Regs[in.A] / e.Regs[in.B]
		}
	case ir.Mod:
		if e.Regs[in.B] == 0 {
			e.Regs[in.Dst] = 0
		} else {
			e.Regs[in.Dst] = e.Regs[in.A] % e.Regs[in.B]
		}
	case ir.CmpEq:
		e.Regs[in.Dst] = b2i(e.Regs[in.A] == e.Regs[in.B])
	case ir.CmpNe:
		e.Regs[in.Dst] = b2i(e.Regs[in.A] != e.Regs[in.B])
	case ir.CmpLt:
		e.Regs[in.Dst] = b2i(e.Regs[in.A] < e.Regs[in.B])
	case ir.CmpLe:
		e.Regs[in.Dst] = b2i(e.Regs[in.A] <= e.Regs[in.B])
	case ir.CmpGt:
		e.Regs[in.Dst] = b2i(e.Regs[in.A] > e.Regs[in.B])
	case ir.CmpGe:
		e.Regs[in.Dst] = b2i(e.Regs[in.A] >= e.Regs[in.B])
	case ir.Load:
		arr := e.Arrays[in.Array]
		idx := e.Regs[in.A]
		if idx < 0 || idx >= int64(len(arr)) {
			return &OOBError{Array: in.Array, Index: idx, Size: int64(len(arr))}
		}
		if e.Hooks.OnLoad != nil {
			e.Hooks.OnLoad(e.Prog.Addr(in.Array, idx))
		}
		e.Regs[in.Dst] = arr[idx]
	case ir.Store:
		arr := e.Arrays[in.Array]
		idx := e.Regs[in.A]
		if idx < 0 || idx >= int64(len(arr)) {
			return &OOBError{Array: in.Array, Index: idx, Size: int64(len(arr))}
		}
		if e.Hooks.OnStore != nil {
			e.Hooks.OnStore(e.Prog.Addr(in.Array, idx))
		}
		arr[idx] = e.Regs[in.B]
	case ir.ReadVar:
		e.Regs[in.Dst] = e.Vars[in.Var]
	case ir.WriteVar:
		e.Vars[in.Var] = e.Regs[in.A]
	default:
		return fmt.Errorf("interp: unknown opcode %v", in.Op)
	}
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Run parses nothing — it executes a whole lowered program from a fresh
// environment and returns it.
func Run(p *ir.Program) (*Env, error) {
	env := NewEnv(p)
	if err := env.Exec(p.Body); err != nil {
		return nil, err
	}
	return env, nil
}

// Package ir defines the crossinv compiler's intermediate representation: a
// structured loop tree whose straight-line regions are flattened into
// three-address instructions over virtual registers (the "pseudo IR" of
// Fig 3.6(a)). Scalars and loop induction variables are accessed through
// named-variable reads/writes rather than SSA φ-nodes, which keeps the PDG,
// slicing, and MTCG analyses direct while preserving instruction-level
// granularity.
package ir

import (
	"fmt"
	"strings"

	"crossinv/internal/lang/token"
)

// Reg is a virtual register index.
type Reg int32

// Op enumerates instruction opcodes.
type Op int

// Opcodes.
const (
	Const    Op = iota // Dst = Imm
	Add                // Dst = A + B
	Sub                // Dst = A - B
	Mul                // Dst = A * B
	Div                // Dst = A / B (0 on division by zero)
	Mod                // Dst = A % B (0 on modulo by zero)
	CmpEq              // Dst = A == B
	CmpNe              // Dst = A != B
	CmpLt              // Dst = A < B
	CmpLe              // Dst = A <= B
	CmpGt              // Dst = A > B
	CmpGe              // Dst = A >= B
	Load               // Dst = Array[A]
	Store              // Array[A] = B
	ReadVar            // Dst = Var
	WriteVar           // Var = A
)

var opNames = [...]string{
	"const", "add", "sub", "mul", "div", "mod",
	"eq", "ne", "lt", "le", "gt", "ge",
	"load", "store", "readvar", "writevar",
}

// String returns the opcode mnemonic.
func (o Op) String() string { return opNames[o] }

// Instr is one three-address instruction.
type Instr struct {
	ID    int // global instruction identity; PDG node index
	Op    Op
	Dst   Reg
	A, B  Reg
	Imm   int64
	Array string // Load/Store
	Var   string // ReadVar/WriteVar
	Pos   token.Pos
}

// String renders the instruction for dumps and tests.
func (in *Instr) String() string {
	switch in.Op {
	case Const:
		return fmt.Sprintf("r%d = const %d", in.Dst, in.Imm)
	case Load:
		return fmt.Sprintf("r%d = load %s[r%d]", in.Dst, in.Array, in.A)
	case Store:
		return fmt.Sprintf("store %s[r%d] = r%d", in.Array, in.A, in.B)
	case ReadVar:
		return fmt.Sprintf("r%d = readvar %s", in.Dst, in.Var)
	case WriteVar:
		return fmt.Sprintf("writevar %s = r%d", in.Var, in.A)
	default:
		return fmt.Sprintf("r%d = %s r%d, r%d", in.Dst, in.Op, in.A, in.B)
	}
}

// HasDst reports whether the opcode defines a register.
func (o Op) HasDst() bool { return o != Store && o != WriteVar }

// Node is a loop-tree node: *Instr, *Loop, or *If.
type Node interface{ node() }

func (*Instr) node() {}

// Loop is a counted loop over Var in [Lo, Hi); Lo and Hi are instruction
// sequences leaving their results in LoReg and HiReg. Parallel marks loops
// the front end asserted DOALL-able within one invocation (parfor).
type Loop struct {
	ID           int
	Var          string
	Lo, Hi       []*Instr
	LoReg, HiReg Reg
	Body         []Node
	Parallel     bool
	Pos          token.Pos
}

func (*Loop) node() {}

// If is a structured conditional; Cond leaves its result in CondReg.
type If struct {
	Cond    []*Instr
	CondReg Reg
	Then    []Node
	Else    []Node
	Pos     token.Pos
}

func (*If) node() {}

// Program is a lowered LNL program.
type Program struct {
	Name string
	// Arrays maps array name to its (constant) size.
	Arrays map[string]int64
	// ArrayBase assigns each array a base offset in a single flat address
	// space, so runtime engines can shadow or summarize accesses uniformly:
	// the address of A[i] is ArrayBase["A"] + i.
	ArrayBase map[string]uint64
	// AddrSpace is the exclusive upper bound of the flat address space.
	AddrSpace uint64
	// Body is the top-level loop tree.
	Body []Node
	// NumRegs is the number of virtual registers.
	NumRegs int
	// Instrs lists every instruction by ID (including loop-bound and
	// condition instructions).
	Instrs []*Instr
	// Loops lists every loop by Loop.ID in preorder.
	Loops []*Loop
}

// Addr returns the flat address of array[idx].
func (p *Program) Addr(array string, idx int64) uint64 {
	return p.ArrayBase[array] + uint64(idx)
}

// Dump renders the loop tree for golden tests and debugging.
func (p *Program) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	names := make([]string, 0, len(p.Arrays))
	for n := range p.Arrays {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  array %s[%d] @%d\n", n, p.Arrays[n], p.ArrayBase[n])
	}
	dumpNodes(&b, p.Body, 1)
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func dumpNodes(b *strings.Builder, nodes []Node, depth int) {
	for _, n := range nodes {
		switch n := n.(type) {
		case *Instr:
			indent(b, depth)
			fmt.Fprintf(b, "%s\n", n)
		case *Loop:
			indent(b, depth)
			kw := "for"
			if n.Parallel {
				kw = "parfor"
			}
			fmt.Fprintf(b, "%s %s = r%d .. r%d {\n", kw, n.Var, n.LoReg, n.HiReg)
			for _, in := range n.Lo {
				indent(b, depth+1)
				fmt.Fprintf(b, "lo: %s\n", in)
			}
			for _, in := range n.Hi {
				indent(b, depth+1)
				fmt.Fprintf(b, "hi: %s\n", in)
			}
			dumpNodes(b, n.Body, depth+1)
			indent(b, depth)
			b.WriteString("}\n")
		case *If:
			indent(b, depth)
			fmt.Fprintf(b, "if r%d {\n", n.CondReg)
			dumpNodes(b, n.Then, depth+1)
			if len(n.Else) > 0 {
				indent(b, depth)
				b.WriteString("} else {\n")
				dumpNodes(b, n.Else, depth+1)
			}
			indent(b, depth)
			b.WriteString("}\n")
		}
	}
}

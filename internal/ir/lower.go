package ir

import (
	"fmt"

	"crossinv/internal/lang/ast"
	"crossinv/internal/lang/token"
)

// LowerError is a semantic error found during lowering.
type LowerError struct {
	Pos token.Pos
	Msg string
}

// Error implements error.
func (e *LowerError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lower translates an AST into the IR, verifying that array references name
// declared arrays, array sizes are compile-time constants, and scalar reads
// are dominated by a definition (an induction variable or prior assignment).
func Lower(prog *ast.Program) (*Program, error) {
	l := &lowerer{
		p: &Program{
			Name:      prog.Name,
			Arrays:    map[string]int64{},
			ArrayBase: map[string]uint64{},
		},
		scalars: map[string]bool{},
	}
	for _, d := range prog.Arrays {
		size, err := constEval(d.Size)
		if err != nil {
			return nil, &LowerError{Pos: d.Pos(), Msg: "array size must be a constant expression"}
		}
		if size <= 0 {
			return nil, &LowerError{Pos: d.Pos(), Msg: fmt.Sprintf("array size must be positive, got %d", size)}
		}
		if _, dup := l.p.Arrays[d.Name]; dup {
			return nil, &LowerError{Pos: d.Pos(), Msg: fmt.Sprintf("array %q redeclared", d.Name)}
		}
		l.p.Arrays[d.Name] = size
		l.p.ArrayBase[d.Name] = l.p.AddrSpace
		l.p.AddrSpace += uint64(size)
	}
	body, err := l.stmts(prog.Body)
	if err != nil {
		return nil, err
	}
	l.p.Body = body
	l.p.NumRegs = int(l.nextReg)
	numberLoops(l.p)
	return l.p, nil
}

// numberLoops assigns Loop IDs in preorder and records them in p.Loops.
func numberLoops(p *Program) {
	p.Loops = p.Loops[:0]
	var walk func(nodes []Node)
	walk = func(nodes []Node) {
		for _, n := range nodes {
			switch n := n.(type) {
			case *Loop:
				n.ID = len(p.Loops)
				p.Loops = append(p.Loops, n)
				walk(n.Body)
			case *If:
				walk(n.Then)
				walk(n.Else)
			}
		}
	}
	walk(p.Body)
}

type lowerer struct {
	p       *Program
	nextReg Reg
	scalars map[string]bool // defined scalar names (induction vars, assignments)
}

func (l *lowerer) reg() Reg {
	r := l.nextReg
	l.nextReg++
	return r
}

func (l *lowerer) emit(out *[]*Instr, in Instr) *Instr {
	in.ID = len(l.p.Instrs)
	p := &in
	l.p.Instrs = append(l.p.Instrs, p)
	*out = append(*out, p)
	return p
}

// constEval folds an expression made only of literals and operators.
func constEval(e ast.Expr) (int64, error) {
	switch e := e.(type) {
	case *ast.Num:
		return e.Value, nil
	case *ast.Bin:
		a, err := constEval(e.L)
		if err != nil {
			return 0, err
		}
		b, err := constEval(e.R)
		if err != nil {
			return 0, err
		}
		return applyOp(e.Op, a, b), nil
	default:
		return 0, fmt.Errorf("not constant")
	}
}

func applyOp(op ast.Op, a, b int64) int64 {
	switch op {
	case ast.Add:
		return a + b
	case ast.Sub:
		return a - b
	case ast.Mul:
		return a * b
	case ast.Div:
		if b == 0 {
			return 0
		}
		return a / b
	case ast.Mod:
		if b == 0 {
			return 0
		}
		return a % b
	case ast.Eq:
		return b2i(a == b)
	case ast.Ne:
		return b2i(a != b)
	case ast.Lt:
		return b2i(a < b)
	case ast.Le:
		return b2i(a <= b)
	case ast.Gt:
		return b2i(a > b)
	case ast.Ge:
		return b2i(a >= b)
	}
	return 0
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

var astToIROp = map[ast.Op]Op{
	ast.Add: Add, ast.Sub: Sub, ast.Mul: Mul, ast.Div: Div, ast.Mod: Mod,
	ast.Eq: CmpEq, ast.Ne: CmpNe, ast.Lt: CmpLt, ast.Le: CmpLe,
	ast.Gt: CmpGt, ast.Ge: CmpGe,
}

// expr lowers e, appending instructions to out and returning the result reg.
func (l *lowerer) expr(e ast.Expr, out *[]*Instr) (Reg, error) {
	switch e := e.(type) {
	case *ast.Num:
		r := l.reg()
		l.emit(out, Instr{Op: Const, Dst: r, Imm: e.Value, Pos: e.Pos()})
		return r, nil
	case *ast.Ref:
		if !l.scalars[e.Name] {
			return 0, &LowerError{Pos: e.Pos(), Msg: fmt.Sprintf("undefined variable %q", e.Name)}
		}
		r := l.reg()
		l.emit(out, Instr{Op: ReadVar, Dst: r, Var: e.Name, Pos: e.Pos()})
		return r, nil
	case *ast.Index:
		if _, ok := l.p.Arrays[e.Array]; !ok {
			return 0, &LowerError{Pos: e.Pos(), Msg: fmt.Sprintf("undeclared array %q", e.Array)}
		}
		idx, err := l.expr(e.Idx, out)
		if err != nil {
			return 0, err
		}
		r := l.reg()
		l.emit(out, Instr{Op: Load, Dst: r, A: idx, Array: e.Array, Pos: e.Pos()})
		return r, nil
	case *ast.Bin:
		a, err := l.expr(e.L, out)
		if err != nil {
			return 0, err
		}
		b, err := l.expr(e.R, out)
		if err != nil {
			return 0, err
		}
		r := l.reg()
		l.emit(out, Instr{Op: astToIROp[e.Op], Dst: r, A: a, B: b, Pos: e.Pos()})
		return r, nil
	default:
		return 0, &LowerError{Pos: e.Pos(), Msg: "unsupported expression"}
	}
}

func (l *lowerer) stmts(stmts []ast.Stmt) ([]Node, error) {
	var nodes []Node
	appendInstrs := func(instrs []*Instr) {
		for _, in := range instrs {
			nodes = append(nodes, in)
		}
	}
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.Assign:
			var seq []*Instr
			if s.Index != nil {
				if _, ok := l.p.Arrays[s.Target]; !ok {
					return nil, &LowerError{Pos: s.Pos(), Msg: fmt.Sprintf("undeclared array %q", s.Target)}
				}
				idx, err := l.expr(s.Index, &seq)
				if err != nil {
					return nil, err
				}
				val, err := l.expr(s.Value, &seq)
				if err != nil {
					return nil, err
				}
				l.emit(&seq, Instr{Op: Store, A: idx, B: val, Array: s.Target, Pos: s.Pos()})
			} else {
				if _, isArray := l.p.Arrays[s.Target]; isArray {
					return nil, &LowerError{Pos: s.Pos(), Msg: fmt.Sprintf("array %q assigned without index", s.Target)}
				}
				val, err := l.expr(s.Value, &seq)
				if err != nil {
					return nil, err
				}
				l.emit(&seq, Instr{Op: WriteVar, A: val, Var: s.Target, Pos: s.Pos()})
				l.scalars[s.Target] = true
			}
			appendInstrs(seq)
		case *ast.For:
			var lo, hi []*Instr
			loReg, err := l.expr(s.Lo, &lo)
			if err != nil {
				return nil, err
			}
			hiReg, err := l.expr(s.Hi, &hi)
			if err != nil {
				return nil, err
			}
			outer := l.scalars[s.Var]
			l.scalars[s.Var] = true
			body, err := l.stmts(s.Body)
			if err != nil {
				return nil, err
			}
			l.scalars[s.Var] = outer
			loop := &Loop{
				Var: s.Var,
				Lo:  lo, Hi: hi, LoReg: loReg, HiReg: hiReg,
				Body: body, Parallel: s.Parallel, Pos: s.Pos(),
			}
			nodes = append(nodes, loop)
		case *ast.If:
			var cond []*Instr
			condReg, err := l.expr(s.Cond, &cond)
			if err != nil {
				return nil, err
			}
			then, err := l.stmts(s.Then)
			if err != nil {
				return nil, err
			}
			els, err := l.stmts(s.Else)
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, &If{Cond: cond, CondReg: condReg, Then: then, Else: els, Pos: s.Pos()})
		default:
			return nil, &LowerError{Pos: s.Pos(), Msg: "unsupported statement"}
		}
	}
	return nodes, nil
}

package ir_test

import (
	"strings"
	"testing"

	"crossinv/internal/ir"
	"crossinv/internal/lang/parser"
)

func lower(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := ir.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func TestLowerArrayLayout(t *testing.T) {
	p := lower(t, "func f() { var A[10], B[5], C[7] }")
	if p.AddrSpace != 22 {
		t.Fatalf("AddrSpace = %d, want 22", p.AddrSpace)
	}
	if p.ArrayBase["A"] != 0 || p.ArrayBase["B"] != 10 || p.ArrayBase["C"] != 15 {
		t.Fatalf("bases = %v", p.ArrayBase)
	}
	if p.Addr("B", 3) != 13 {
		t.Fatalf("Addr(B,3) = %d, want 13", p.Addr("B", 3))
	}
}

func TestLowerConstantArraySize(t *testing.T) {
	p := lower(t, "func f() { var A[4*25+2] }")
	if p.Arrays["A"] != 102 {
		t.Fatalf("size = %d, want 102", p.Arrays["A"])
	}
}

func TestLowerLoopNumbering(t *testing.T) {
	p := lower(t, `func f() {
		var A[10]
		for t = 0 .. 2 {
			parfor i = 0 .. 10 { A[i] = i }
			parfor j = 0 .. 10 { A[j] = j }
		}
	}`)
	if len(p.Loops) != 3 {
		t.Fatalf("loops = %d, want 3", len(p.Loops))
	}
	if p.Loops[0].Var != "t" || p.Loops[1].Var != "i" || p.Loops[2].Var != "j" {
		t.Fatalf("preorder loop vars = %s %s %s", p.Loops[0].Var, p.Loops[1].Var, p.Loops[2].Var)
	}
	if p.Loops[0].Parallel || !p.Loops[1].Parallel || !p.Loops[2].Parallel {
		t.Fatal("parallel flags wrong")
	}
}

func TestLowerErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"undeclared array", "func f() { A[0] = 1 }", "undeclared array"},
		{"undefined scalar", "func f() { x = y }", "undefined variable"},
		{"non-constant size", "func f() { x = 3 var A[x] }", "constant"},
		{"negative size", "func f() { var A[0-4] }", "positive"},
		{"redeclared", "func f() { var A[2], A[3] }", "redeclared"},
		{"array without index", "func f() { var A[2] A = 1 }", "without index"},
		{"induction out of scope", "func f() { for i = 0 .. 3 { x = i } y = i }", "undefined variable"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog, err := parser.Parse(c.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if _, err := ir.Lower(prog); err == nil {
				t.Fatalf("Lower succeeded, want error containing %q", c.wantSub)
			} else if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestDumpContainsStructure(t *testing.T) {
	p := lower(t, `func f() {
		var A[4]
		parfor i = 0 .. 4 { A[i] = i * 2 }
	}`)
	d := p.Dump()
	for _, want := range []string{"program f", "array A[4] @0", "parfor i", "store A"} {
		if !strings.Contains(d, want) {
			t.Fatalf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestInstrIDsAreDense(t *testing.T) {
	p := lower(t, `func f() {
		var A[4]
		for t = 0 .. 2 { parfor i = 0 .. 4 { A[i] = A[i] + t } }
	}`)
	for i, in := range p.Instrs {
		if in.ID != i {
			t.Fatalf("instr %d has ID %d", i, in.ID)
		}
	}
	if len(p.Instrs) == 0 {
		t.Fatal("no instructions recorded")
	}
}

package core

import (
	"errors"
	"testing"

	"crossinv/internal/runtime/adaptive"
	"crossinv/internal/transform/speccrossgen"
)

func TestAdaptiveMatchesSequentialFig13(t *testing.T) {
	c := compileT(t, fig13)
	want := seqChecksum(t, c)
	res, err := c.RunAdaptive(c.Regions[0], adaptive.Config{Workers: 3, Window: 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Env.Checksum(); got != want {
		t.Fatalf("adaptive checksum %x != sequential %x", got, want)
	}
	if res.Stats.Windows != 4 {
		t.Fatalf("windows = %d, want 4 (24 epochs / window 6)", res.Stats.Windows)
	}
	// The stencil's manifest-dependence rate is high throughout, so the
	// default policy must keep the DOMORE engine and never speculate (which
	// also keeps this test exact under the race detector).
	if res.Stats.EngineWindows[adaptive.EngineSpecCross] != 0 {
		t.Fatalf("policy speculated on a high-rate region: %v", res.Stats.EngineWindows)
	}
	if res.Stats.Domore.SyncConditions == 0 {
		t.Fatal("expected dynamic synchronization conditions")
	}
}

func TestAdaptiveMatchesSequentialCG(t *testing.T) {
	c := compileT(t, cgLike)
	want := seqChecksum(t, c)
	region := c.Regions[len(c.Regions)-1]
	res, err := c.RunAdaptive(region, adaptive.Config{Workers: 4, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Env.Checksum(); got != want {
		t.Fatalf("adaptive checksum %x != sequential %x", got, want)
	}
	if res.Stats.Windows == 0 {
		t.Fatal("no windows executed")
	}
}

func TestAdaptiveRejectsValueDependentAddrs(t *testing.T) {
	c := compileT(t, `func main() {
		var IDX[8], C[16]
		for t = 0 .. 3 {
			parfor i = 0 .. 8 { IDX[i] = IDX[i] + 1 }
			parfor j = 0 .. 8 { C[IDX[j]] = C[IDX[j]] + j }
		}
	}`)
	_, err := c.RunAdaptive(c.Regions[0], adaptive.Config{Workers: 2})
	if !errors.Is(err, speccrossgen.ErrAddrDependsOnParallel) {
		t.Fatalf("err = %v, want ErrAddrDependsOnParallel", err)
	}
}

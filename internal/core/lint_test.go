package core

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLintCorpusClean asserts the static plan verifier accepts every plan
// the pipeline itself emits: the whole corpus (and the examples) must lint
// without a single diagnostic — the verifier exists to catch corrupted
// plans, not to second-guess correct ones.
func TestLintCorpusClean(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.lnl"))
	if err != nil {
		t.Fatal(err)
	}
	more, err := filepath.Glob(filepath.Join("..", "..", "examples", "compiler", "*.lnl"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, more...)
	if len(files) < 8 {
		t.Fatalf("found only %d programs to lint", len(files))
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			c, err := Compile(string(src))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if list := c.Lint(); len(list) != 0 {
				t.Errorf("lint diagnostics on a pipeline-emitted plan:\n%s", list.Text())
			}
		})
	}
}

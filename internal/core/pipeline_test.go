package core

import (
	"testing"

	"crossinv/internal/raceflag"
	"crossinv/internal/runtime/speccross"
)

// Programs exercising less-common shapes through the whole pipeline.

const condSrc = `
func cond() {
  var A[80], B[80]
  parfor s = 0 .. 80 { B[s] = s * 13 % 29 }
  for t = 0 .. 10 {
    parfor i = 0 .. 80 {
      if B[i] % 2 == 0 {
        A[i] = A[i] + B[i]
      } else {
        A[i] = A[i] * 2 + 1
      }
    }
    parfor j = 0 .. 80 { B[j] = A[j] % 101 + t }
  }
}
`

func TestConditionalBodyAllStrategies(t *testing.T) {
	c := compileT(t, condSrc)
	want := seqChecksum(t, c)
	region := c.Regions[len(c.Regions)-1]

	b, err := c.RunBarriers(region, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Env.Checksum() != want {
		t.Fatal("barrier diverged on conditional body")
	}

	d, err := c.RunDOMORE(region, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Env.Checksum() != want {
		t.Fatal("domore diverged on conditional body")
	}

	s, err := c.RunSpecCross(region, speccross.Config{Workers: 3, CheckpointEvery: 5}, raceflag.Enabled)
	if err != nil {
		t.Fatal(err)
	}
	if s.Env.Checksum() != want {
		t.Fatal("speccross diverged on conditional body")
	}
}

const emptyInnerSrc = `
func g() {
  var A[10]
  for t = 0 .. 5 {
    parfor i = 3 .. 3 { A[i] = i }
    parfor j = 0 .. 10 { A[j] = A[j] + t }
  }
}
`

func TestEmptyInnerInvocation(t *testing.T) {
	c := compileT(t, emptyInnerSrc)
	want := seqChecksum(t, c)
	region := c.Regions[0]
	for _, run := range []struct {
		name string
		f    func() (uint64, error)
	}{
		{"barrier", func() (uint64, error) {
			r, err := c.RunBarriers(region, 2)
			if err != nil {
				return 0, err
			}
			return r.Env.Checksum(), nil
		}},
		{"domore", func() (uint64, error) {
			r, err := c.RunDOMORE(region, 2)
			if err != nil {
				return 0, err
			}
			return r.Env.Checksum(), nil
		}},
		{"speccross", func() (uint64, error) {
			r, err := c.RunSpecCross(region, speccross.Config{Workers: 2, CheckpointEvery: 3}, raceflag.Enabled)
			if err != nil {
				return 0, err
			}
			return r.Env.Checksum(), nil
		}},
	} {
		got, err := run.f()
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if got != want {
			t.Fatalf("%s diverged on empty invocations", run.name)
		}
	}
}

const decreasingBounds = `
func h() {
  var A[30]
  for t = 0 .. 4 {
    parfor i = 20 .. 10 { A[i] = 999 }
    parfor j = 0 .. 30 { A[j] = A[j] + 1 }
  }
}
`

func TestDegenerateBoundsTreatedAsEmpty(t *testing.T) {
	c := compileT(t, decreasingBounds)
	want := seqChecksum(t, c)
	region := c.Regions[0]
	r, err := c.RunDOMORE(region, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Env.Checksum() != want {
		t.Fatal("domore diverged on degenerate bounds")
	}
	s, err := c.RunSpecCross(region, speccross.Config{Workers: 2, CheckpointEvery: 2}, raceflag.Enabled)
	if err != nil {
		t.Fatal(err)
	}
	if s.Env.Checksum() != want {
		t.Fatal("speccross diverged on degenerate bounds")
	}
}

func TestRunSpecCrossUnprofitableFallsBackToBarriers(t *testing.T) {
	// Tight dependence distance (cells revisited next invocation on the
	// next index): with many workers the profiler must decline and the
	// pipeline must fall back to correct barrier execution.
	src := `
	func f() {
	  var A[6]
	  for t = 0 .. 30 {
	    parfor i = 0 .. 6 { A[i] = A[i] * 3 + i + t }
	  }
	}`
	c := compileT(t, src)
	want := seqChecksum(t, c)
	region := c.Regions[0]
	res, err := c.RunSpecCross(region, speccross.Config{Workers: 8, CheckpointEvery: 10}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Env.Checksum() != want {
		t.Fatal("fallback execution diverged")
	}
	if res.Profile.MinDistance == speccross.NoConflict {
		t.Fatal("profiler should observe the A[i] self-dependences")
	}
	if res.Profile.MinDistance >= 8 {
		t.Fatalf("distance = %d; the 6-task epochs must sit below the 8-worker threshold", res.Profile.MinDistance)
	}
	if res.Stats.Tasks != 0 {
		t.Fatalf("speculative tasks = %d, want 0 (barrier fallback)", res.Stats.Tasks)
	}
}

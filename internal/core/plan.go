package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"crossinv/internal/ir"
	"crossinv/internal/runtime/domore"
	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/transform/advisor"
	"crossinv/internal/transform/mtcg"
	"crossinv/internal/transform/slice"
	"crossinv/internal/transform/speccrossgen"
)

// PipelineVersion identifies the analysis/transform pipeline that produced
// a plan artifact. Bump it whenever the dependence analysis, partitioner,
// slicer, MTCG, or profiler change observably: cached plans from an older
// pipeline then miss (and recompute) instead of being replayed.
const PipelineVersion = "pipeline/v1"

// SourceHash is the content address of a program: the hex SHA-256 of its
// source text. Everything the pipeline derives is a pure function of the
// source, so two invocations with equal hashes share every plan artifact.
func SourceHash(src string) string {
	h := sha256.Sum256([]byte(src))
	return hex.EncodeToString(h[:])
}

// RegionFacts is the serializable analysis record for one candidate
// region — the "parallelization plan" column of Table 5.1 in data form.
type RegionFacts struct {
	// Var and Pos identify the outer loop.
	Var string `json:"var"`
	Pos string `json:"pos"`
	// AdvisorPlan is the Chapter 2 advisor's classification of the outer
	// loop and InnerClasses the DOALL status of each parallel inner loop.
	AdvisorPlan  string   `json:"advisor_plan"`
	InnerClasses []string `json:"inner_classes,omitempty"`
	// CrossInvDeps counts the static may-alias cross-invocation
	// dependences — the quantity the paper's runtimes synchronize or
	// speculate across.
	CrossInvDeps int `json:"cross_inv_deps"`
	// XDepClass is the xdep analyzer's verdict for the region (none /
	// forward-only / cyclic / unknown) and XDepMinDistance /
	// XDepMaxDistance its proven invocation-distance bounds (meaningful
	// for forward-only). Cached plans replay these into
	// adaptive.Config.SeedFromFacts.
	XDepClass       string `json:"xdep_class,omitempty"`
	XDepMinDistance int64  `json:"xdep_min_distance,omitempty"`
	XDepMaxDistance int64  `json:"xdep_max_distance,omitempty"`
}

// Facts extracts the serializable analysis facts for every candidate
// region. This is the cacheable face of the dependence analysis: a plan
// cache stores Facts (not *Compiled, which holds live IR pointers), and a
// warm invocation replays them instead of re-running Analyze.
func (c *Compiled) Facts() []RegionFacts {
	xd := c.XDep()
	out := make([]RegionFacts, 0, len(c.Regions))
	for i, region := range c.Regions {
		rec := advisor.Advise(c.Prog, c.Dep, region)
		f := RegionFacts{
			Var:          region.Var,
			Pos:          region.Pos.String(),
			AdvisorPlan:  fmt.Sprintf("%v (%s)", rec.Plan, rec.Reason),
			CrossInvDeps: len(c.Dep.CrossInvocationDeps(region)),
		}
		if i < len(xd.Regions) {
			r := &xd.Regions[i]
			f.XDepClass = r.Class
			f.XDepMinDistance = r.MinDistance
			f.XDepMaxDistance = r.MaxDistance
		}
		for _, n := range region.Body {
			if l, ok := n.(*ir.Loop); ok && l.Parallel {
				f.InnerClasses = append(f.InnerClasses,
					fmt.Sprintf("%s: %v", l.Var, c.Dep.ClassifyParallel(l)))
			}
		}
		out = append(out, f)
	}
	return out
}

// ProfileRegion runs the §4.4 profiling pass for the region against
// scratch state (the program executed up to region entry) and returns the
// observed conflict profile. The pass never touches the caller's state, so
// its result is a pure function of (source, region, kind) — exactly what a
// plan cache may persist and replay.
func (c *Compiled) ProfileRegion(region *ir.Loop, kind signature.Kind) (speccross.ProfileResult, error) {
	env, _, err := c.runOutside(region)
	if err != nil {
		return speccross.ProfileResult{}, err
	}
	pr, err := speccrossgen.New(c.Prog, c.Dep, region, env, 1)
	if err != nil {
		return speccross.ProfileResult{}, err
	}
	return pr.Profile(kind), nil
}

// RunSpecCrossProfiled executes the region under SPECCROSS with a §4.4
// profile already in hand — freshly computed by ProfileRegion or replayed
// from a plan cache. It applies the paper's profitability rule: when the
// minimum dependence distance is below the worker count, speculation is
// declined and the region runs under non-speculative barriers.
func (c *Compiled) RunSpecCrossProfiled(region *ir.Loop, cfg speccross.Config, prof speccross.ProfileResult) (*SpecCrossResult, error) {
	res := &SpecCrossResult{Profile: prof}
	dist, profitable := prof.Recommended(cfg.Workers)
	env, finish, err := c.runOutside(region)
	if err != nil {
		return nil, err
	}
	r, err := speccrossgen.New(c.Prog, c.Dep, region, env, cfg.Workers)
	if err != nil {
		return nil, err
	}
	if err := verifySignaturePlan(c.Prog, region); err != nil {
		return nil, err
	}
	if !profitable {
		speccross.RunBarriers(r, cfg.Workers)
		if err := finish(env); err != nil {
			return nil, err
		}
		res.Env = env
		return res, nil
	}
	cfg.SpecDistance = dist
	res.Stats = speccross.Run(r, cfg)
	if err := finish(env); err != nil {
		return nil, err
	}
	res.Env = env
	return res, nil
}

// PlanDOMORE runs the DOMORE compile pipeline for the region — partition,
// computeAddr slicing, MTCG — and the always-on plan verifier, returning
// the transformed region. The result is immutable after construction
// (Parallelized.Bind builds fresh per-run state), so a daemon may build it
// once per program and reuse it across concurrent invocations.
func (c *Compiled) PlanDOMORE(region *ir.Loop) (*mtcg.Parallelized, error) {
	par, err := mtcg.Transform(c.Prog, c.Dep, region, slice.Options{})
	if err != nil {
		return nil, err
	}
	if err := verifyDomorePlan(par); err != nil {
		return nil, err
	}
	return par, nil
}

// RunDOMOREPlanned executes a region whose DOMORE transform was already
// built (and verified) by PlanDOMORE — the warm path that skips the
// partition/slice/MTCG pipeline entirely.
func (c *Compiled) RunDOMOREPlanned(par *mtcg.Parallelized, region *ir.Loop, opts domore.Options) (*DomoreResult, error) {
	env, finish, err := c.runOutside(region)
	if err != nil {
		return nil, err
	}
	stats, err := par.Run(env, opts)
	if err != nil {
		return nil, err
	}
	if err := finish(env); err != nil {
		return nil, err
	}
	return &DomoreResult{Env: env, Stats: stats, Par: par}, nil
}

// RunDOMOREShardedPlanned is RunDOMOREPlanned on the sharded scheduler
// (mtcg.Parallelized.RunSharded): same plan, same schedule, dependence
// detection spread over scheduler lanes with batched condition queues.
func (c *Compiled) RunDOMOREShardedPlanned(par *mtcg.Parallelized, region *ir.Loop, opts domore.Options) (*DomoreResult, error) {
	env, finish, err := c.runOutside(region)
	if err != nil {
		return nil, err
	}
	stats, err := par.RunSharded(env, opts)
	if err != nil {
		return nil, err
	}
	if err := finish(env); err != nil {
		return nil, err
	}
	return &DomoreResult{Env: env, Stats: stats, Par: par}, nil
}

// Oracle runs the program sequentially and returns the checksum every
// parallel strategy must reproduce. Programs are deterministic, so the
// checksum is a pure function of the source — cacheable alongside the
// plan, which is how a warm invocation verifies without re-running the
// sequential oracle.
func (c *Compiled) Oracle() (uint64, error) {
	env, err := c.RunSequential()
	if err != nil {
		return 0, err
	}
	return env.Checksum(), nil
}

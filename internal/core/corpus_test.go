package core

import (
	"os"
	"path/filepath"
	"testing"

	"crossinv/internal/raceflag"
	"crossinv/internal/runtime/speccross"
)

// TestCorpus runs every loop-nest-language program in testdata through the
// whole pipeline under all execution strategies and checks bit-exact
// equivalence with sequential execution. The corpus covers disjoint and
// chained dataflow, strided subscripts, nested conditionals, scalar-derived
// bounds, and negative-value arithmetic.
func TestCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.lnl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 6 {
		t.Fatalf("corpus has %d programs, expected at least 6", len(files))
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			c, err := Compile(string(src))
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if len(c.Regions) == 0 {
				t.Fatal("no candidate region detected")
			}
			want := seqChecksum(t, c)
			region := c.Regions[len(c.Regions)-1]

			if res, err := c.RunBarriers(region, 4); err != nil {
				t.Errorf("barrier: %v", err)
			} else if got := res.Env.Checksum(); got != want {
				t.Errorf("barrier checksum %x != sequential %x", got, want)
			}

			if res, err := c.RunDOMORE(region, 4); err != nil {
				t.Logf("domore inapplicable: %v", err)
			} else if got := res.Env.Checksum(); got != want {
				t.Errorf("domore checksum %x != sequential %x", got, want)
			}

			// Under the race detector, profile first so speculation is
			// gated (unbounded speculation over conflicts is racy by
			// design, §4.2.1).
			res, err := c.RunSpecCross(region, speccross.Config{Workers: 4, CheckpointEvery: 6}, raceflag.Enabled)
			if err != nil {
				t.Errorf("speccross: %v", err)
			} else if got := res.Env.Checksum(); got != want {
				t.Errorf("speccross checksum %x != sequential %x", got, want)
			}
		})
	}
}

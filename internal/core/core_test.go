package core

import (
	"testing"
	"testing/quick"

	"crossinv/internal/raceflag"
	"crossinv/internal/runtime/domore"
	"crossinv/internal/runtime/speccross"
)

// fig13 is the paper's motivating program (Fig 1.3): two parallel loops
// with cross-invocation stencil dependences under a timestep loop.
const fig13 = `
func main() {
  var A[64], B[65]
  parfor k = 0 .. 65 { B[k] = k * 7 % 13 }
  for t = 0 .. 12 {
    parfor i = 0 .. 64 { A[i] = B[i] + B[i+1] }
    parfor j = 1 .. 65 { B[j] = A[j-1] * 3 + A[j-1] % 11 }
  }
}
`

// cgLike mirrors the CG loop nest of Fig 3.1: outer loop computes bounds,
// inner loop updates C through an index array — runtime-dependent
// dependences, the DOMORE target.
const cgLike = `
func main() {
  var S[12], E[12], C[40], IDX[120]
  parfor p = 0 .. 12 { S[p] = p * 9 % 30 }
  parfor q = 0 .. 12 { E[q] = S[q] + 7 }
  parfor z = 0 .. 120 { IDX[z] = z * 17 % 40 }
  for i = 0 .. 12 {
    start = S[i]
    end = E[i]
    parfor j = start .. end {
      C[IDX[j]] = C[IDX[j]] * 3 + j + 1
    }
  }
}
`

func compileT(t *testing.T, src string) *Compiled {
	t.Helper()
	c, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func seqChecksum(t *testing.T, c *Compiled) uint64 {
	t.Helper()
	env, err := c.RunSequential()
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	return env.Checksum()
}

func TestRegionsDetected(t *testing.T) {
	c := compileT(t, fig13)
	if len(c.Regions) != 1 {
		t.Fatalf("regions = %d, want 1", len(c.Regions))
	}
	if _, err := c.Region(5); err == nil {
		t.Fatal("out-of-range region lookup must fail")
	}
}

func TestBarriersMatchSequential(t *testing.T) {
	c := compileT(t, fig13)
	want := seqChecksum(t, c)
	res, err := c.RunBarriers(c.Regions[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Env.Checksum(); got != want {
		t.Fatalf("barrier checksum %x != sequential %x", got, want)
	}
	if _, waits := res.Barrier.Stats(); waits == 0 {
		t.Fatal("expected barrier waits")
	}
}

func TestSpecCrossMatchesSequential(t *testing.T) {
	c := compileT(t, fig13)
	want := seqChecksum(t, c)
	// Under the race detector, profile first: unbounded speculation over
	// the stencil's genuine conflicts races by design (§4.2.1).
	res, err := c.RunSpecCross(c.Regions[0], speccross.Config{Workers: 4, CheckpointEvery: 6}, raceflag.Enabled)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Env.Checksum(); got != want {
		t.Fatalf("speccross checksum %x != sequential %x", got, want)
	}
	if res.Stats.Tasks == 0 {
		t.Fatal("no tasks executed")
	}
}

func TestSpecCrossWithProfilingMatchesSequential(t *testing.T) {
	c := compileT(t, fig13)
	want := seqChecksum(t, c)
	res, err := c.RunSpecCross(c.Regions[0], speccross.Config{Workers: 2, CheckpointEvery: 6}, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Env.Checksum(); got != want {
		t.Fatalf("speccross+profile checksum %x != sequential %x", got, want)
	}
	if res.Profile.Tasks == 0 {
		t.Fatal("profiling did not run")
	}
	// The stencil has real cross-invocation dependences; profiling must
	// observe conflicts and a finite minimum distance.
	if res.Profile.MinDistance == speccross.NoConflict {
		t.Fatal("profiling missed the stencil's cross-invocation conflicts")
	}
}

func TestDOMOREMatchesSequentialCG(t *testing.T) {
	c := compileT(t, cgLike)
	want := seqChecksum(t, c)
	// The CG region is the loop over i: the last detected region.
	region := c.Regions[len(c.Regions)-1]
	res, err := c.RunDOMORE(region, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Env.Checksum(); got != want {
		t.Fatalf("domore checksum %x != sequential %x", got, want)
	}
	if res.Stats.Iterations == 0 {
		t.Fatal("no iterations scheduled")
	}
	// The IDX pattern revisits C cells across invocations: dynamic
	// dependences must have been detected and synchronized.
	if res.Stats.SyncConditions == 0 {
		t.Fatal("expected dynamic synchronization conditions")
	}
}

func TestDOMOREShardedMatchesSequentialCG(t *testing.T) {
	c := compileT(t, cgLike)
	want := seqChecksum(t, c)
	region := c.Regions[len(c.Regions)-1]
	res, err := c.RunDOMOREShardedOpts(region, domore.Options{Workers: 4, Lanes: 3, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Env.Checksum(); got != want {
		t.Fatalf("domore-sharded checksum %x != sequential %x", got, want)
	}
	if res.Stats.Iterations == 0 {
		t.Fatal("no iterations scheduled")
	}
	if res.Stats.SyncConditions == 0 {
		t.Fatal("expected dynamic synchronization conditions")
	}
	// The sharded scheduler must reproduce the flat scheduler's schedule.
	ref, err := c.RunDOMORE(region, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Iterations != ref.Stats.Iterations ||
		res.Stats.Dispatches != ref.Stats.Dispatches ||
		res.Stats.SyncConditions != ref.Stats.SyncConditions ||
		res.Stats.AddrChecks != ref.Stats.AddrChecks {
		t.Fatalf("sharded stats %+v diverge from flat %+v", res.Stats, ref.Stats)
	}
}

func TestDOMOREMatchesSequentialFig13(t *testing.T) {
	c := compileT(t, fig13)
	want := seqChecksum(t, c)
	res, err := c.RunDOMORE(c.Regions[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Env.Checksum(); got != want {
		t.Fatalf("domore checksum %x != sequential %x", got, want)
	}
}

func TestReportMentionsClassification(t *testing.T) {
	c := compileT(t, cgLike)
	rep := c.Report(c.Regions[len(c.Regions)-1])
	if rep == "" {
		t.Fatal("empty report")
	}
}

func TestCompileErrorsPropagate(t *testing.T) {
	if _, err := Compile("func broken {"); err == nil {
		t.Fatal("syntax error not reported")
	}
	if _, err := Compile("func f() { x = A[0] }"); err == nil {
		t.Fatal("semantic error not reported")
	}
}

// Property: across worker counts and strategies, all executions of fig13
// and cgLike agree with the sequential result.
func TestQuickAllStrategiesAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("integration property test")
	}
	if raceflag.Enabled {
		t.Skip("unbounded speculation over conflicting stencils races by design (§4.2.1)")
	}
	prop := func(workers uint8, useCG bool, ckpt uint8) bool {
		src := fig13
		if useCG {
			src = cgLike
		}
		c, err := Compile(src)
		if err != nil {
			return false
		}
		env, err := c.RunSequential()
		if err != nil {
			return false
		}
		want := env.Checksum()
		region := c.Regions[len(c.Regions)-1]
		nw := int(workers%4) + 1

		b, err := c.RunBarriers(region, nw)
		if err != nil || b.Env.Checksum() != want {
			return false
		}
		s, err := c.RunSpecCross(region, speccross.Config{Workers: nw, CheckpointEvery: int(ckpt%8) + 1}, false)
		if err != nil || s.Env.Checksum() != want {
			return false
		}
		d, err := c.RunDOMORE(region, nw)
		if err != nil || d.Env.Checksum() != want {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Package core is the crossinv compiler/runtime façade: the end-to-end
// automatic parallelization pipeline the paper contributes. It compiles a
// loop-nest-language program, analyzes its dependences, detects candidate
// regions, and executes them sequentially, with barrier-synchronized DOALL
// (the baseline of Figs 5.1–5.2), with DOMORE (Chapter 3), or with
// SPECCROSS (Chapter 4) — verifying that every strategy computes the
// sequential result.
package core

import (
	"errors"
	"fmt"

	"crossinv/internal/analysis/depend"
	"crossinv/internal/analysis/xdep"
	"crossinv/internal/ir"
	"crossinv/internal/ir/interp"
	"crossinv/internal/lang/parser"
	"crossinv/internal/runtime/barrier"
	"crossinv/internal/runtime/domore"
	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/runtime/trace"
	"crossinv/internal/transform/advisor"
	"crossinv/internal/transform/mtcg"
	"crossinv/internal/transform/speccrossgen"
)

// Compiled is a fully analyzed LNL program.
type Compiled struct {
	Prog *ir.Program
	Dep  *depend.Result
	// Regions lists candidate outer loops (sequential loops directly
	// containing parfor children), in preorder.
	Regions []*ir.Loop

	xdepFacts *xdep.Facts // lazily built by XDep
}

// XDep returns the cross-invocation dependence facts for every candidate
// region: distance/direction vectors and a none / forward-only / cyclic /
// unknown classification per region. The report is computed once per
// Compiled and cached — it is a pure function of the IR, and its Hash()
// content-addresses the dependence structure for the plan cache.
func (c *Compiled) XDep() *xdep.Facts {
	if c.xdepFacts == nil {
		c.xdepFacts = xdep.Analyze(c.Prog, c.Dep, c.Regions)
	}
	return c.xdepFacts
}

// Compile parses, lowers, and analyzes source text.
func Compile(src string) (*Compiled, error) {
	astProg, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	p, err := ir.Lower(astProg)
	if err != nil {
		return nil, err
	}
	c := &Compiled{Prog: p, Dep: depend.Analyze(p)}
	c.Regions = speccrossgen.Detect(p)
	// Compute the cross-invocation facts eagerly so a Compiled shared
	// across daemon requests never lazily mutates under concurrent readers.
	c.xdepFacts = xdep.Analyze(p, c.Dep, c.Regions)
	return c, nil
}

// ErrNoRegion reports that the program has no candidate region.
var ErrNoRegion = errors.New("core: program has no outer loop with parallel inner loops")

// Region returns the idx'th candidate region.
func (c *Compiled) Region(idx int) (*ir.Loop, error) {
	if idx < 0 || idx >= len(c.Regions) {
		return nil, ErrNoRegion
	}
	return c.Regions[idx], nil
}

// RunSequential executes the whole program sequentially and returns the
// final environment (the correctness oracle for every parallel strategy).
func (c *Compiled) RunSequential() (*interp.Env, error) {
	return interp.Run(c.Prog)
}

// runOutside executes program nodes up to (but excluding) the region loop,
// returning the environment at region entry, and a function that finishes
// the rest of the program after the region completes.
func (c *Compiled) runOutside(region *ir.Loop) (*interp.Env, func(*interp.Env) error, error) {
	env := interp.NewEnv(c.Prog)
	var before, after []ir.Node
	found := false
	for _, n := range c.Prog.Body {
		if n == ir.Node(region) {
			found = true
			continue
		}
		if found {
			after = append(after, n)
		} else {
			before = append(before, n)
		}
	}
	if !found {
		return nil, nil, fmt.Errorf("core: region is not a top-level loop")
	}
	if err := env.Exec(before); err != nil {
		return nil, nil, err
	}
	finish := func(e *interp.Env) error { return e.Exec(after) }
	return env, finish, nil
}

// BarrierResult is the outcome of a barrier-parallelized execution.
type BarrierResult struct {
	Env     *interp.Env
	Barrier *barrier.Barrier
}

// RunBarriers executes the program with the region parallelized in the
// classic way: inner loops split across workers, a barrier between
// invocations (Fig 1.3(b)).
func (c *Compiled) RunBarriers(region *ir.Loop, workers int) (*BarrierResult, error) {
	return c.RunBarriersTraced(region, workers, nil)
}

// RunBarriersTraced is RunBarriers with event tracing into rec (nil rec
// is equivalent to RunBarriers).
func (c *Compiled) RunBarriersTraced(region *ir.Loop, workers int, rec *trace.Recorder) (*BarrierResult, error) {
	env, finish, err := c.runOutside(region)
	if err != nil {
		return nil, err
	}
	r, err := speccrossgen.New(c.Prog, c.Dep, region, env, workers)
	if err != nil {
		return nil, err
	}
	if err := verifySignaturePlan(c.Prog, region); err != nil {
		return nil, err
	}
	bar := speccross.RunBarriersTraced(r, workers, rec)
	if err := finish(env); err != nil {
		return nil, err
	}
	return &BarrierResult{Env: env, Barrier: bar}, nil
}

// DomoreResult is the outcome of a DOMORE execution.
type DomoreResult struct {
	Env   *interp.Env
	Stats domore.Stats
	Par   *mtcg.Parallelized
}

// RunDOMORE executes the program with the region transformed by the DOMORE
// pipeline (partition → slice → MTCG → runtime).
func (c *Compiled) RunDOMORE(region *ir.Loop, workers int) (*DomoreResult, error) {
	return c.RunDOMOREOpts(region, domore.Options{Workers: workers})
}

// RunDOMOREOpts is RunDOMORE with full control over the runtime options
// (queue capacity, scheduling policy, event tracing via opts.Trace). It is
// the cold path: PlanDOMORE builds and verifies the transform, then
// RunDOMOREPlanned executes it; a plan cache holding the Parallelized can
// call RunDOMOREPlanned directly and skip the pipeline.
func (c *Compiled) RunDOMOREOpts(region *ir.Loop, opts domore.Options) (*DomoreResult, error) {
	par, err := c.PlanDOMORE(region)
	if err != nil {
		return nil, err
	}
	return c.RunDOMOREPlanned(par, region, opts)
}

// RunDOMOREShardedOpts is RunDOMOREOpts on the sharded scheduler: the same
// DOMORE plan executed by domore.RunSharded, which spreads the scheduler's
// dependence detection over opts.Lanes lanes and batches sync conditions.
func (c *Compiled) RunDOMOREShardedOpts(region *ir.Loop, opts domore.Options) (*DomoreResult, error) {
	par, err := c.PlanDOMORE(region)
	if err != nil {
		return nil, err
	}
	return c.RunDOMOREShardedPlanned(par, region, opts)
}

// SpecCrossResult is the outcome of a SPECCROSS execution.
type SpecCrossResult struct {
	Env     *interp.Env
	Stats   speccross.Stats
	Profile speccross.ProfileResult
}

// RunSpecCross executes the program with the region transformed by the
// SPECCROSS pipeline. When profile is true, a §4.4 profiling pass runs
// first (ProfileRegion, against scratch region state) and its recommended
// speculative distance gates the run via RunSpecCrossProfiled; a plan
// cache holding the ProfileResult calls RunSpecCrossProfiled directly and
// skips the pass.
func (c *Compiled) RunSpecCross(region *ir.Loop, cfg speccross.Config, profile bool) (*SpecCrossResult, error) {
	if profile {
		prof, err := c.ProfileRegion(region, cfg.SigKind)
		if err != nil {
			return nil, err
		}
		return c.RunSpecCrossProfiled(region, cfg, prof)
	}
	env, finish, err := c.runOutside(region)
	if err != nil {
		return nil, err
	}
	res := &SpecCrossResult{}
	r, err := speccrossgen.New(c.Prog, c.Dep, region, env, cfg.Workers)
	if err != nil {
		return nil, err
	}
	if err := verifySignaturePlan(c.Prog, region); err != nil {
		return nil, err
	}
	res.Stats = speccross.Run(r, cfg)
	if err := finish(env); err != nil {
		return nil, err
	}
	res.Env = env
	return res, nil
}

// Report summarizes the compile-time analysis of a region: the DOALL
// status of each inner loop, the Chapter 2 advisor's classification of the
// outer loop (why intra-invocation techniques alone cannot parallelize it),
// and the cross-invocation dependence count — what Table 5.1's
// "parallelization plan" column records.
func (c *Compiled) Report(region *ir.Loop) string {
	s := fmt.Sprintf("region: outer loop %q at %s\n", region.Var, region.Pos)
	outer := advisor.Advise(c.Prog, c.Dep, region)
	s += fmt.Sprintf("  outer loop plan: %v (%s)\n", outer.Plan, outer.Reason)
	for _, n := range region.Body {
		if l, ok := n.(*ir.Loop); ok && l.Parallel {
			s += fmt.Sprintf("  inner %q: %v\n", l.Var, c.Dep.ClassifyParallel(l))
		}
	}
	deps := c.Dep.CrossInvocationDeps(region)
	s += fmt.Sprintf("  cross-invocation dependences (static, may-alias): %d\n", len(deps))
	return s
}

// SignatureKind re-exports the default signature scheme for callers that
// do not import the signature package directly.
const SignatureKind = signature.Range

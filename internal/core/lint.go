package core

import (
	"fmt"

	"crossinv/internal/analysis/verify"
	"crossinv/internal/diag"
	"crossinv/internal/ir"
	"crossinv/internal/transform/advisor"
	"crossinv/internal/transform/mtcg"
)

// Lint runs the static plan verifier over the whole program: every
// candidate region's derived parallelization plan (partition, slices, MTCG
// communication, signature instrumentation) and every loop's advisor
// classification. The returned list is sorted; callers attach the file name
// with diag.List.WithFile.
func (c *Compiled) Lint() diag.List {
	var out diag.List
	for _, region := range c.Regions {
		out = append(out, verify.Region(c.Prog, c.Dep, region)...)
	}
	for _, l := range c.Prog.Loops {
		rec := advisor.Advise(c.Prog, c.Dep, l)
		out = append(out, verify.Advisor(c.Prog, c.Dep, l, rec)...)
	}
	// Cross-check the cached cross-invocation facts against a fresh
	// analyzer run: no plan may rest on a verdict the analyzer would not
	// reproduce (in particular, none claimed where a dependence is proven).
	out = append(out, verify.XDep(c.Prog, c.Dep, c.Regions, c.XDep())...)
	out.Sort()
	return out
}

// verifyDomorePlan is the always-on gate before a DOMORE execution: the
// partition, slice, and MTCG checks over the transformed region. The checks
// are pure static passes over structures the transform already built, so
// the cost is negligible next to running the region.
func verifyDomorePlan(par *mtcg.Parallelized) error {
	var list diag.List
	list = append(list, verify.Partition(par.Part)...)
	for _, inner := range par.Part.Inners {
		list = append(list, verify.Slice(par.Prog, par.Part, par.Slices[inner])...)
	}
	list = append(list, verify.MTCG(par)...)
	if errs := list.Errors(); len(errs) > 0 {
		errs.Sort()
		return fmt.Errorf("core: DOMORE plan failed verification:\n%s", errs.Text())
	}
	return nil
}

// verifySignaturePlan is the always-on gate before any speculative or
// barrier execution built on speccrossgen: the signature-coverage and
// epoch-boundary checks for the region.
func verifySignaturePlan(p *ir.Program, region *ir.Loop) error {
	list := verify.Signatures(p, region, verify.SignaturePlanFor(region))
	if errs := list.Errors(); len(errs) > 0 {
		errs.Sort()
		return fmt.Errorf("core: speculative region failed verification:\n%s", errs.Text())
	}
	return nil
}

package core

import (
	"crossinv/internal/ir"
	"crossinv/internal/ir/interp"
	"crossinv/internal/runtime/adaptive"
	"crossinv/internal/transform/speccrossgen"
)

// AdaptiveResult is the outcome of an adaptive hybrid execution.
type AdaptiveResult struct {
	Env   *interp.Env
	Stats adaptive.Stats
}

// RunAdaptive executes the program with the region under the adaptive
// hybrid runtime: the region is transformed once, wrapped in its DOMORE
// view (speccrossgen.NewDomoreView — this fails for regions whose task
// addresses depend on parallel-written data, exactly the regions DOMORE
// itself cannot handle), and handed to adaptive.Run, which switches between
// barrier, DOMORE, and SPECCROSS execution at window boundaries as the
// monitors dictate.
func (c *Compiled) RunAdaptive(region *ir.Loop, cfg adaptive.Config) (*AdaptiveResult, error) {
	env, finish, err := c.runOutside(region)
	if err != nil {
		return nil, err
	}
	r, err := speccrossgen.New(c.Prog, c.Dep, region, env, cfg.Workers)
	if err != nil {
		return nil, err
	}
	v, err := speccrossgen.NewDomoreView(r)
	if err != nil {
		return nil, err
	}
	if err := verifySignaturePlan(c.Prog, region); err != nil {
		return nil, err
	}
	res := &AdaptiveResult{Stats: adaptive.Run(v, cfg)}
	if err := finish(env); err != nil {
		return nil, err
	}
	res.Env = env
	return res, nil
}

package slice_test

import (
	"testing"

	"crossinv/internal/analysis/depend"
	"crossinv/internal/analysis/verify"
	"crossinv/internal/diag"
	"crossinv/internal/ir"
	"crossinv/internal/lang/parser"
	"crossinv/internal/transform/partition"
	"crossinv/internal/transform/slice"
)

func cleanSlice(t *testing.T) (*ir.Program, *partition.Result, *slice.ComputeAddr) {
	t.Helper()
	astProg, err := parser.Parse(`func f() {
		var C[120], IDX[400]
		for i = 0 .. 40 {
			parfor j = 0 .. 100 {
				C[IDX[j]] = C[IDX[j]] * 3 + j
			}
		}
	}`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(astProg)
	if err != nil {
		t.Fatal(err)
	}
	dep := depend.Analyze(p)
	part, err := partition.Compute(p, dep, p.Loops[0])
	if err != nil {
		t.Fatal(err)
	}
	inner := part.Inners[0]
	ca, err := slice.Generate(p, dep, inner, map[string]bool{"C": true}, slice.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p, part, ca
}

func wantSliceError(t *testing.T, p *ir.Program, part *partition.Result, ca *slice.ComputeAddr, c verify.Corruption) {
	t.Helper()
	list := verify.Slice(p, part, ca)
	for _, d := range list {
		if d.Severity == diag.Error && d.Check == verify.CheckSlice && d.Pos == c.Pos {
			return
		}
	}
	t.Fatalf("corruption %q not flagged at %s:\n%s", c.Name, c.Pos, list.Text())
}

// TestVerifierCatchesStoreInSlice seeds the §3.3.4 violation slice.Generate
// refuses to emit — a store moved into the computeAddr slice — and asserts
// the verifier flags it at the store's position.
func TestVerifierCatchesStoreInSlice(t *testing.T) {
	p, part, ca := cleanSlice(t)
	if list := verify.Slice(p, part, ca); len(list) != 0 {
		t.Fatalf("clean slice flagged:\n%s", list.Text())
	}
	c, ok := verify.CorruptStoreIntoSlice(ca)
	if !ok {
		t.Fatal("no store to move into the slice")
	}
	wantSliceError(t, p, part, ca, c)
}

// TestVerifierCatchesDroppedAddress seeds a tracked access removed from the
// slice's address map — an access whose address would never reach shadow
// memory — and asserts the verifier flags that access.
func TestVerifierCatchesDroppedAddress(t *testing.T) {
	p, part, ca := cleanSlice(t)
	c, ok := verify.CorruptDropAddr(p, ca)
	if !ok {
		t.Fatal("slice tracks no addresses")
	}
	wantSliceError(t, p, part, ca, c)
}

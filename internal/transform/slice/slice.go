// Package slice generates computeAddr programs by reverse program slicing
// (§3.3.4, Algorithm 3): for each inner-loop body, the address operands of
// memory accesses involved in cross-iteration or cross-invocation
// dependences are sliced backwards through register and scalar dataflow,
// yielding a side-effect-free instruction sequence the DOMORE scheduler
// executes redundantly to predict each iteration's address set.
//
// Two abort conditions mirror the paper's:
//
//   - the slice would contain a side-effecting instruction (a store), or a
//     load from an array the workers write — the Fig 4.1 situation, where
//     the inspector cannot run ahead of the updates;
//   - the performance guard: the slice is too heavy relative to the body,
//     so the sequential scheduler would bottleneck the pipeline.
package slice

import (
	"errors"
	"fmt"

	"crossinv/internal/analysis/depend"
	"crossinv/internal/ir"
)

// ErrSideEffect reports that slicing would duplicate a side-effecting
// instruction into computeAddr.
var ErrSideEffect = errors.New("slice: computeAddr would have side effects")

// ErrWorkerState reports that the slice must read state the workers mutate,
// so the scheduler cannot compute addresses ahead of execution.
var ErrWorkerState = errors.New("slice: computeAddr reads worker-updated arrays; DOMORE inapplicable")

// ErrTooHeavy reports the performance-guard failure.
var ErrTooHeavy = errors.New("slice: computeAddr too heavy relative to loop body (performance guard)")

// ComputeAddr is a generated address-computation program for one inner loop.
type ComputeAddr struct {
	// Inner is the loop the slice belongs to.
	Inner *ir.Loop
	// Instrs is the slice, in original program order. It references the
	// inner loop's induction variable and scheduler-computed scalars.
	Instrs []*ir.Instr
	// AddrOf maps each tracked memory instruction ID to the register that
	// holds its address after executing Instrs.
	AddrOf map[int]ir.Reg
	// Weight is len(Instrs) / len(body instructions): the quantity the
	// performance guard thresholds (Table 5.2 reports the measured
	// scheduler/worker time ratio for the same programs).
	Weight float64
}

// Options tunes generation.
type Options struct {
	// MaxWeight is the performance-guard threshold (default 0.9: the slice
	// must be strictly lighter than the body it predicts).
	MaxWeight float64
}

// Generate builds the computeAddr slice for inner, tracking the memory
// instructions that participate in dependences the runtime must enforce.
// workerWrites is the set of arrays written by any worker-side instruction
// in the region; a slice that loads from one of them is rejected.
func Generate(p *ir.Program, dep *depend.Result, inner *ir.Loop, workerWrites map[string]bool, opts Options) (*ComputeAddr, error) {
	if opts.MaxWeight <= 0 {
		opts.MaxWeight = 0.9
	}

	// Body instructions in original order. Memory accesses inside loops
	// nested under the parallel loop would need a structured (looping)
	// computeAddr; the generator rejects them, mirroring the paper's
	// transformation aborting on slices it cannot express.
	if nestedAccess(inner.Body, false) {
		return nil, fmt.Errorf("slice: loop %q has memory accesses in nested loops", inner.Var)
	}
	var body []*ir.Instr
	collectInstrs(inner.Body, &body)
	if len(body) == 0 {
		return nil, fmt.Errorf("slice: loop %q has an empty body", inner.Var)
	}
	inBody := map[int]*ir.Instr{}
	defOf := map[ir.Reg]*ir.Instr{}
	for _, in := range body {
		inBody[in.ID] = in
		if in.Op.HasDst() {
			defOf[in.Dst] = in
		}
	}

	// Seed: address operands of every tracked access. DOMORE must know all
	// addresses an iteration touches, so every load and store of shared
	// arrays is tracked (Algorithm 1 updates shadow memory for the full
	// address set).
	ca := &ComputeAddr{Inner: inner, AddrOf: map[int]ir.Reg{}}
	need := map[int]bool{} // instruction IDs in the slice
	var work []ir.Reg
	for _, in := range body {
		switch in.Op {
		case ir.Load, ir.Store:
			ca.AddrOf[in.ID] = in.A
			work = append(work, in.A)
		}
	}

	// Backward closure over register dataflow within the body. Registers
	// defined outside the body (scheduler scalars, loop bounds) are slice
	// inputs — the scheduler computes them anyway.
	seen := map[ir.Reg]bool{}
	for len(work) > 0 {
		r := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[r] {
			continue
		}
		seen[r] = true
		def, ok := defOf[r]
		if !ok {
			continue
		}
		if need[def.ID] {
			continue
		}
		need[def.ID] = true
		switch def.Op {
		case ir.Store, ir.WriteVar:
			return nil, ErrSideEffect
		case ir.Load:
			if workerWrites[def.Array] {
				return nil, ErrWorkerState
			}
			work = append(work, def.A)
		case ir.Const, ir.ReadVar:
			// leaves
		default:
			work = append(work, def.A, def.B)
		}
	}

	for _, in := range body {
		if need[in.ID] {
			ca.Instrs = append(ca.Instrs, in)
		}
	}
	ca.Weight = float64(len(ca.Instrs)) / float64(len(body))
	if ca.Weight > opts.MaxWeight {
		return nil, fmt.Errorf("%w: weight %.2f > %.2f", ErrTooHeavy, ca.Weight, opts.MaxWeight)
	}
	_ = dep
	return ca, nil
}

func collectInstrs(nodes []ir.Node, out *[]*ir.Instr) {
	for _, n := range nodes {
		switch n := n.(type) {
		case *ir.Instr:
			*out = append(*out, n)
		case *ir.Loop:
			for _, in := range n.Lo {
				*out = append(*out, in)
			}
			for _, in := range n.Hi {
				*out = append(*out, in)
			}
			collectInstrs(n.Body, out)
		case *ir.If:
			for _, in := range n.Cond {
				*out = append(*out, in)
			}
			collectInstrs(n.Then, out)
			collectInstrs(n.Else, out)
		}
	}
}

// nestedAccess reports whether any load/store sits inside a loop nested in
// the node list (inLoop marks that we are already below one nesting level).
func nestedAccess(nodes []ir.Node, inLoop bool) bool {
	for _, n := range nodes {
		switch n := n.(type) {
		case *ir.Instr:
			if inLoop && (n.Op == ir.Load || n.Op == ir.Store) {
				return true
			}
		case *ir.Loop:
			if nestedAccess(n.Body, true) {
				return true
			}
		case *ir.If:
			if nestedAccess(n.Then, inLoop) || nestedAccess(n.Else, inLoop) {
				return true
			}
		}
	}
	return false
}

package slice_test

import (
	"errors"
	"testing"

	"crossinv/internal/analysis/depend"
	"crossinv/internal/ir"
	"crossinv/internal/lang/parser"
	"crossinv/internal/transform/slice"
)

func gen(t *testing.T, src string, loopIdx int, workerWrites map[string]bool, opts slice.Options) (*ir.Program, *slice.ComputeAddr, error) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := ir.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	ca, err := slice.Generate(p, depend.Analyze(p), p.Loops[loopIdx], workerWrites, opts)
	return p, ca, err
}

func TestCGSlice(t *testing.T) {
	// The Fig 3.1 inner loop: the slice must contain the IDX load and the
	// address arithmetic, but not the update of C.
	p, ca, err := gen(t, `func f() {
		var C[100], IDX[100]
		for i = 0 .. 10 {
			parfor j = 0 .. 100 {
				C[IDX[j]] = C[IDX[j]] * 3 + j
			}
		}
	}`, 1, map[string]bool{"C": true}, slice.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range ca.Instrs {
		if in.Op == ir.Store {
			t.Fatalf("slice contains store %v", in)
		}
		if in.Op == ir.Load && in.Array == "C" {
			t.Fatalf("slice loads worker-written array C")
		}
	}
	// Both the load and the store of C must have tracked address registers.
	tracked := 0
	for _, in := range p.Instrs {
		if (in.Op == ir.Load || in.Op == ir.Store) && in.Array == "C" {
			if _, ok := ca.AddrOf[in.ID]; ok {
				tracked++
			}
		}
	}
	if tracked < 2 {
		t.Fatalf("tracked C accesses = %d, want >= 2", tracked)
	}
	if ca.Weight <= 0 || ca.Weight > 0.9 {
		t.Fatalf("weight = %.2f", ca.Weight)
	}
}

func TestSliceRejectsWorkerStateReads(t *testing.T) {
	// Fig 4.1: the index array C is itself updated by workers; computeAddr
	// cannot read it ahead of execution.
	_, _, err := gen(t, `func f() {
		var A[100], B[100], C[100]
		for t = 0 .. 4 {
			parfor i = 0 .. 100 {
				A[i] = B[C[i]]
				B[C[i]] = i
			}
		}
	}`, 1, map[string]bool{"A": true, "B": true, "C": true}, slice.Options{})
	if !errors.Is(err, slice.ErrWorkerState) {
		t.Fatalf("err = %v, want ErrWorkerState", err)
	}
}

func TestPerformanceGuard(t *testing.T) {
	// Body is almost entirely address computation: with a strict guard the
	// transformation must refuse (the scheduler would be the bottleneck).
	_, _, err := gen(t, `func f() {
		var A[1000], IDX[1000]
		for t = 0 .. 4 {
			parfor i = 0 .. 100 {
				A[IDX[i] * 7 % 1000] = 1
			}
		}
	}`, 1, nil, slice.Options{MaxWeight: 0.5})
	if !errors.Is(err, slice.ErrTooHeavy) {
		t.Fatalf("err = %v, want ErrTooHeavy", err)
	}
}

func TestNestedAccessRejected(t *testing.T) {
	_, _, err := gen(t, `func f() {
		var A[100]
		for t = 0 .. 4 {
			parfor i = 0 .. 10 {
				for k = 0 .. 10 { A[i*10+k] = k }
			}
		}
	}`, 1, nil, slice.Options{})
	if err == nil {
		t.Fatal("nested-loop accesses must be rejected")
	}
}

func TestAffineSliceIsTiny(t *testing.T) {
	_, ca, err := gen(t, `func f() {
		var A[101], B[101]
		for t = 0 .. 4 {
			parfor i = 0 .. 100 {
				A[i] = B[i] * 3 + B[i+1] * 5 + t
			}
		}
	}`, 1, map[string]bool{"A": true}, slice.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Address computations are i, i, i+1: the slice should be a small
	// fraction of the body (the arithmetic with B values must be excluded).
	if ca.Weight > 0.5 {
		t.Fatalf("slice weight %.2f too heavy for an affine body", ca.Weight)
	}
}

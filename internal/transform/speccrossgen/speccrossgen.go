// Package speccrossgen performs the SPECCROSS compiler transformation
// (§4.3, Algorithm 5): it detects code regions made of consecutive parallel
// loop invocations under an outer sequential loop, verifies the interleaved
// sequential code is privatizable (scalar-only, so it can be duplicated or
// replayed per §4.3's requirement), and emits an executable region — a
// speccross.Workload over the IR interpreter — whose tasks record their
// memory accesses into signatures exactly where spec_access instrumentation
// would be inserted (every load and store of shared arrays: the interpreter
// hooks fire at the same program points).
package speccrossgen

import (
	"errors"
	"fmt"

	"crossinv/internal/analysis/depend"
	"crossinv/internal/ir"
	"crossinv/internal/ir/interp"
	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/sim"
)

// ErrNoParallelInner reports a region without parfor children.
var ErrNoParallelInner = errors.New("speccrossgen: region has no parallel inner loop")

// ErrSequentialStores reports that the code between inner loops writes
// shared arrays, so it cannot be privatized across workers.
var ErrSequentialStores = errors.New("speccrossgen: sequential region writes shared arrays; not privatizable")

// ErrSequentialReadsParallel reports that the sequential code reads arrays
// the parallel loops write, so the epoch schedule cannot be computed ahead
// of the speculative execution (the Fig 4.1 constraint applied to the
// control replay).
var ErrSequentialReadsParallel = errors.New("speccrossgen: sequential region reads arrays written by parallel loops")

// Detect returns the outer loops that are SPECCROSS region candidates: a
// non-parallel loop directly containing at least one parfor (the hot loop
// nests of §4.3; the whole-program hotness filter is the caller's concern).
func Detect(p *ir.Program) []*ir.Loop {
	var out []*ir.Loop
	for _, l := range p.Loops {
		if l.Parallel {
			continue
		}
		for _, n := range l.Body {
			if inner, ok := n.(*ir.Loop); ok && inner.Parallel {
				out = append(out, l)
				break
			}
		}
	}
	return out
}

// Region is a SPECCROSS-transformed code region bound to program state.
// It implements speccross.Workload (plus Labeler).
type Region struct {
	Prog   *ir.Program
	Outer  *ir.Loop
	Inners []*ir.Loop

	base    *interp.Env
	workers []*interp.Env
	epochs  []epochInfo
}

// epochInfo is one inner-loop invocation with its precomputed bounds and
// the scalar environment its tasks observe.
type epochInfo struct {
	innerIdx int
	lo, hi   int64
	vars     map[string]int64
}

// New validates the region rooted at outer, replays its sequential control
// (outer loop + scalar-only interleaved code) against env to precompute the
// epoch schedule, and returns the executable region. maxWorkers bounds the
// worker thread IDs that will call Run.
func New(p *ir.Program, dep *depend.Result, outer *ir.Loop, env *interp.Env, maxWorkers int) (*Region, error) {
	r := &Region{Prog: p, Outer: outer, base: env}
	var seqNodes []ir.Node
	for _, n := range outer.Body {
		if l, ok := n.(*ir.Loop); ok && l.Parallel {
			r.Inners = append(r.Inners, l)
		} else {
			seqNodes = append(seqNodes, n)
		}
	}
	if len(r.Inners) == 0 {
		return nil, ErrNoParallelInner
	}

	// Privatizability check: sequential nodes (including the inner loops'
	// bound computations) must not store to arrays, and must not load from
	// arrays any parallel body writes.
	parallelWrites := map[string]bool{}
	for _, inner := range r.Inners {
		var instrs []*ir.Instr
		collectInstrs(inner.Body, &instrs)
		for _, in := range instrs {
			if in.Op == ir.Store {
				parallelWrites[in.Array] = true
			}
		}
	}
	var seqInstrs []*ir.Instr
	collectInstrs(seqNodes, &seqInstrs)
	for _, inner := range r.Inners {
		seqInstrs = append(seqInstrs, inner.Lo...)
		seqInstrs = append(seqInstrs, inner.Hi...)
	}
	for _, in := range seqInstrs {
		switch in.Op {
		case ir.Store:
			return nil, fmt.Errorf("%w (array %q at %s)", ErrSequentialStores, in.Array, in.Pos)
		case ir.Load:
			if parallelWrites[in.Array] {
				return nil, fmt.Errorf("%w (array %q at %s)", ErrSequentialReadsParallel, in.Array, in.Pos)
			}
		}
	}

	// Control replay: execute the outer loop's sequential skeleton on a
	// fork (shared arrays are only read) and record each epoch's bounds
	// and scalar snapshot.
	replay := env.Fork()
	lo, hi, err := replay.LoopBounds(outer)
	if err != nil {
		return nil, err
	}
	for t := lo; t < hi; t++ {
		replay.Vars[outer.Var] = t
		seq := 0
		for _, n := range outer.Body {
			if l, ok := n.(*ir.Loop); ok && l.Parallel {
				elo, ehi, err := replay.LoopBounds(l)
				if err != nil {
					return nil, err
				}
				vars := make(map[string]int64, len(replay.Vars))
				for k, v := range replay.Vars {
					vars[k] = v
				}
				r.epochs = append(r.epochs, epochInfo{innerIdx: seq, lo: elo, hi: ehi, vars: vars})
				seq++
				continue
			}
			if err := replay.Exec([]ir.Node{n}); err != nil {
				return nil, err
			}
		}
	}

	if maxWorkers <= 0 {
		maxWorkers = 1
	}
	for i := 0; i < maxWorkers; i++ {
		r.workers = append(r.workers, env.Fork())
	}
	_ = dep
	return r, nil
}

func collectInstrs(nodes []ir.Node, out *[]*ir.Instr) {
	for _, n := range nodes {
		switch n := n.(type) {
		case *ir.Instr:
			*out = append(*out, n)
		case *ir.Loop:
			*out = append(*out, n.Lo...)
			*out = append(*out, n.Hi...)
			collectInstrs(n.Body, out)
		case *ir.If:
			*out = append(*out, n.Cond...)
			collectInstrs(n.Then, out)
			collectInstrs(n.Else, out)
		}
	}
}

// Epochs implements speccross.Workload.
func (r *Region) Epochs() int { return len(r.epochs) }

// Tasks implements speccross.Workload.
func (r *Region) Tasks(epoch int) int {
	e := r.epochs[epoch]
	if e.hi <= e.lo {
		return 0
	}
	return int(e.hi - e.lo)
}

// Run implements speccross.Workload: execute one inner-loop iteration on
// the worker's private environment, recording accesses into sig when
// speculating (this is where Algorithm 5's enter_task/spec_access/exit_task
// instrumentation lands).
func (r *Region) Run(epoch, task, tid int, sig *signature.Signature) {
	e := r.epochs[epoch]
	inner := r.Inners[e.innerIdx%len(r.Inners)]
	env := r.workers[tid]
	for k, v := range e.vars {
		env.Vars[k] = v
	}
	env.Vars[inner.Var] = e.lo + int64(task)
	if sig != nil {
		env.Hooks = interp.Hooks{
			OnLoad:  func(a uint64) { sig.Read(a) },
			OnStore: func(a uint64) { sig.Write(a) },
		}
	} else {
		env.Hooks = interp.Hooks{}
	}
	if err := env.Exec(inner.Body); err != nil {
		// Speculative execution over inconsistent state may fault (e.g.
		// out-of-bounds through a stale index array); panicking here is the
		// §4.2.2 "segmentation fault" trigger, which the SPECCROSS engine
		// recovers from. Non-speculative execution re-raises it too: a real
		// program bug then surfaces during the barrier re-execution.
		panic(err)
	}
}

// Snapshot implements speccross.Workload.
func (r *Region) Snapshot() any { return r.base.Snapshot() }

// Restore implements speccross.Workload.
func (r *Region) Restore(s any) { r.base.Restore(s.(map[string][]int64)) }

// EpochLabel implements speccross.Labeler: epochs are named after the
// source position of their inner loop, so per-loop minimum dependence
// distances can be reported (Table 5.3).
func (r *Region) EpochLabel(epoch int) string {
	e := r.epochs[epoch]
	inner := r.Inners[e.innerIdx%len(r.Inners)]
	return fmt.Sprintf("L%d@%s", e.innerIdx%len(r.Inners)+1, inner.Pos)
}

// RunSpeculative executes the region under the SPECCROSS runtime.
func (r *Region) RunSpeculative(cfg speccross.Config) speccross.Stats {
	return speccross.Run(r, cfg)
}

// RunBarriers executes the region with the non-speculative baseline.
func (r *Region) RunBarriers(workers int) {
	speccross.RunBarriers(r, workers)
}

// Profile runs the §4.4 profiling pass over the region, comparing within
// the default checkpoint period (speccross.DefaultProfileWindow): the
// engine never overlaps epochs across a checkpoint, so the windowed pass is
// exact for default configurations while staying linear in epochs.
func (r *Region) Profile(kind signature.Kind) speccross.ProfileResult {
	return speccross.Profile(r, kind, speccross.DefaultProfileWindow)
}

// Trace exports the region's virtual-time structure by replaying every task
// on a scratch fork, counting interpreted instructions as the cost measure
// and recording the flat addresses each task touches. unitCost scales
// instructions to virtual time units (≤0 defaults to 100 — native compiled
// loop bodies do more per statement than one interpreted instruction, so
// the default keeps demo programs in the cost regime of the calibrated
// benchmarks).
func (r *Region) Trace(unitCost int64) *sim.Trace {
	if unitCost <= 0 {
		unitCost = 100
	}
	scratch := r.base.Fork()
	scratch.Arrays = r.base.Snapshot() // private copy: replay must not mutate
	tr := &sim.Trace{Name: r.Prog.Name}
	for epoch := 0; epoch < r.Epochs(); epoch++ {
		e := r.epochs[epoch]
		inner := r.Inners[e.innerIdx%len(r.Inners)]
		ep := sim.Epoch{SeqCost: 50 * unitCost}
		for task := 0; task < r.Tasks(epoch); task++ {
			var reads, writes []uint64
			scratch.Hooks = interp.Hooks{
				OnLoad:  func(a uint64) { reads = append(reads, a) },
				OnStore: func(a uint64) { writes = append(writes, a) },
			}
			for k, v := range e.vars {
				scratch.Vars[k] = v
			}
			scratch.Vars[inner.Var] = e.lo + int64(task)
			before := scratch.Steps
			if err := scratch.Exec(inner.Body); err != nil {
				// Replay over the scratch copy diverging from live state can
				// fault; cost the task with what executed so far.
				_ = err
			}
			ep.Tasks = append(ep.Tasks, sim.Task{
				Cost:   (scratch.Steps - before) * unitCost,
				Reads:  reads,
				Writes: writes,
			})
		}
		tr.Epochs = append(tr.Epochs, ep)
	}
	return tr
}

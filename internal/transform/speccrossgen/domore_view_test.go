package speccrossgen_test

import (
	"errors"
	"testing"

	"crossinv/internal/ir"
	"crossinv/internal/ir/interp"
	"crossinv/internal/runtime/adaptive"
	"crossinv/internal/runtime/domore"
	"crossinv/internal/transform/speccrossgen"
)

func stencilView(t *testing.T, workers int) (*speccrossgen.DomoreView, *interp.Env) {
	t.Helper()
	p, dep := compile(t, stencilSrc)
	env := interp.NewEnv(p)
	r, err := speccrossgen.New(p, dep, p.Loops[0], env, workers)
	if err != nil {
		t.Fatal(err)
	}
	v, err := speccrossgen.NewDomoreView(r)
	if err != nil {
		t.Fatal(err)
	}
	return v, env
}

func TestDomoreViewShape(t *testing.T) {
	v, _ := stencilView(t, 2)
	if v.Invocations() != v.Epochs() || v.Invocations() != 12 {
		t.Fatalf("invocations = %d, epochs = %d, want 12", v.Invocations(), v.Epochs())
	}
	if v.Iterations(0) != v.Tasks(0) {
		t.Fatalf("iterations %d != tasks %d", v.Iterations(0), v.Tasks(0))
	}
}

// TestDomoreViewComputeAddr: the replayed address set of L1's iteration i
// (A[i] = B[i] + B[i+1]) is exactly {A[i], B[i], B[i+1]}.
func TestDomoreViewComputeAddr(t *testing.T) {
	v, _ := stencilView(t, 1)
	p := v.Prog
	got := v.ComputeAddr(0, 5, nil)
	want := map[uint64]bool{
		p.Addr("A", 5): true,
		p.Addr("B", 5): true,
		p.Addr("B", 6): true,
	}
	if len(got) != len(want) {
		t.Fatalf("ComputeAddr = %v, want 3 distinct addresses", got)
	}
	for _, a := range got {
		if !want[a] {
			t.Fatalf("unexpected address %d in %v", a, got)
		}
	}
	// Appending to a caller-owned prefix must leave the prefix intact.
	buf := []uint64{99}
	got = v.ComputeAddr(0, 5, buf)
	if got[0] != 99 || len(got) != 4 {
		t.Fatalf("prefix not preserved: %v", got)
	}
}

// TestDomoreViewReplayIsSideEffectFree: ComputeAddr must not mutate live
// program state (§3.3.4's requirement on the computeAddr slice).
func TestDomoreViewReplayIsSideEffectFree(t *testing.T) {
	v, env := stencilView(t, 1)
	for iter := 0; iter < v.Iterations(0); iter++ {
		v.ComputeAddr(0, iter, nil)
	}
	for _, a := range env.Arrays["A"] {
		if a != 0 {
			t.Fatal("ComputeAddr mutated the live environment")
		}
	}
}

// TestDomoreViewRunsUnderDomore: the stencil region executed by the real
// DOMORE engine through the view reproduces the sequential result.
func TestDomoreViewRunsUnderDomore(t *testing.T) {
	p, _ := compile(t, stencilSrc)
	seq, err := interp.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Checksum()

	v, env := stencilView(t, 3)
	stats := domore.Run(v, domore.Options{Workers: 3})
	if got := env.Checksum(); got != want {
		t.Fatalf("domore-view checksum %x != sequential %x", got, want)
	}
	// The stencil's cross-invocation dependences must surface as dynamic
	// synchronization conditions.
	if stats.SyncConditions == 0 {
		t.Fatal("expected dynamic synchronization conditions")
	}
}

// TestDomoreViewSatisfiesAdaptive: the view is a complete adaptive.Workload
// (compile-time assertion plus a windowed run through the controller).
func TestDomoreViewSatisfiesAdaptive(t *testing.T) {
	p, _ := compile(t, stencilSrc)
	seq, err := interp.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Checksum()

	v, env := stencilView(t, 3)
	var w adaptive.Workload = v
	stats := adaptive.Run(w, adaptive.Config{Workers: 3, Window: 4})
	if got := env.Checksum(); got != want {
		t.Fatalf("adaptive checksum %x != sequential %x", got, want)
	}
	if stats.Windows != 3 {
		t.Fatalf("windows = %d, want 3", stats.Windows)
	}
}

// TestDomoreViewRejectsValueDependentAddrs: when a parallel loop writes the
// index array another access reads its address from, the scheduler cannot
// precompute address sets and the view must be refused.
func TestDomoreViewRejectsValueDependentAddrs(t *testing.T) {
	p, dep := compile(t, `func f() {
		var IDX[8], C[16]
		for t = 0 .. 3 {
			parfor i = 0 .. 8 { IDX[i] = IDX[i] + 1 }
			parfor j = 0 .. 8 { C[IDX[j]] = C[IDX[j]] + j }
		}
	}`)
	env := interp.NewEnv(p)
	r, err := speccrossgen.New(p, dep, p.Loops[0], env, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := speccrossgen.NewDomoreView(r); !errors.Is(err, speccrossgen.ErrAddrDependsOnParallel) {
		t.Fatalf("err = %v, want ErrAddrDependsOnParallel", err)
	}
}

// TestDomoreViewAllowsReadOnlyIndexArrays: indirection through an index
// array no parallel loop writes (the CG pattern) is fine.
func TestDomoreViewAllowsReadOnlyIndexArrays(t *testing.T) {
	// Each epoch's 8 consecutive IDX entries are a permutation of C's 8
	// cells (5 is coprime to 8), so iterations within one epoch stay
	// independent (DOALL) while the stride-5 epoch windows overlap by 3 —
	// genuine cross-invocation dependences through a read-only index array.
	p, dep := compile(t, `func f() {
		var IDX[40], C[8]
		parfor z = 0 .. 40 { IDX[z] = z * 5 % 8 }
		for t = 0 .. 4 {
			parfor j = 0 .. 8 { C[IDX[t*5+j]] = C[IDX[t*5+j]] * 3 + j + 1 }
		}
	}`)
	seq, err := interp.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Checksum()

	env := interp.NewEnv(p)
	// Loops[0] is the init parfor; the region is the loop over t. Execute
	// the init first so the region sees the populated IDX.
	var outer = p.Loops[0]
	for _, l := range p.Loops {
		if !l.Parallel {
			outer = l
		}
	}
	if err := env.Exec([]ir.Node{p.Loops[0]}); err != nil {
		t.Fatal(err)
	}
	r, err := speccrossgen.New(p, dep, outer, env, 2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := speccrossgen.NewDomoreView(r)
	if err != nil {
		t.Fatal(err)
	}
	if stats := domore.Run(v, domore.Options{Workers: 2}); stats.SyncConditions == 0 {
		t.Fatal("IDX maps distinct j to shared C cells; conditions expected")
	}
	if got := env.Checksum(); got != want {
		t.Fatalf("checksum %x != sequential %x", got, want)
	}
}

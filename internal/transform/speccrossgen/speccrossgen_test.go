package speccrossgen_test

import (
	"errors"
	"testing"

	"crossinv/internal/analysis/depend"
	"crossinv/internal/ir"
	"crossinv/internal/ir/interp"
	"crossinv/internal/lang/parser"
	"crossinv/internal/runtime/signature"
	"crossinv/internal/runtime/speccross"
	"crossinv/internal/transform/speccrossgen"
)

func compile(t *testing.T, src string) (*ir.Program, *depend.Result) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := ir.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p, depend.Analyze(p)
}

const stencilSrc = `
func f() {
  var A[40], B[41]
  for t = 0 .. 6 {
    parfor i = 0 .. 40 { A[i] = B[i] + B[i+1] }
    parfor j = 1 .. 41 { B[j] = A[j-1] * 2 + t }
  }
}
`

func TestDetect(t *testing.T) {
	p, _ := compile(t, stencilSrc)
	regions := speccrossgen.Detect(p)
	if len(regions) != 1 || regions[0].Var != "t" {
		t.Fatalf("regions = %v", regions)
	}
}

func TestDetectIgnoresLoopsWithoutParfor(t *testing.T) {
	p, _ := compile(t, `func f() {
		var A[4]
		for i = 0 .. 4 { A[i] = i }
	}`)
	if got := speccrossgen.Detect(p); len(got) != 0 {
		t.Fatalf("regions = %d, want 0", len(got))
	}
}

func TestRegionStructure(t *testing.T) {
	p, dep := compile(t, stencilSrc)
	env := interp.NewEnv(p)
	r, err := speccrossgen.New(p, dep, p.Loops[0], env, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Epochs() != 12 {
		t.Fatalf("epochs = %d, want 12 (6 timesteps × 2 loops)", r.Epochs())
	}
	if r.Tasks(0) != 40 || r.Tasks(1) != 40 {
		t.Fatalf("tasks = %d/%d", r.Tasks(0), r.Tasks(1))
	}
	if r.EpochLabel(0) == r.EpochLabel(1) {
		t.Fatal("the two inner loops must carry distinct labels")
	}
	if r.EpochLabel(0) != r.EpochLabel(2) {
		t.Fatal("invocations of the same loop must share a label")
	}
}

func TestRejectsSequentialStores(t *testing.T) {
	p, dep := compile(t, `func f() {
		var A[10], S[10]
		for t = 0 .. 3 {
			S[t] = t
			parfor i = 0 .. 10 { A[i] = A[i] + S[t] }
		}
	}`)
	_, err := speccrossgen.New(p, dep, p.Loops[0], interp.NewEnv(p), 1)
	if !errors.Is(err, speccrossgen.ErrSequentialStores) {
		t.Fatalf("err = %v, want ErrSequentialStores", err)
	}
}

func TestRejectsSequentialReadsOfParallelWrites(t *testing.T) {
	p, dep := compile(t, `func f() {
		var A[10]
		for t = 0 .. 3 {
			x = A[0]
			parfor i = 0 .. 10 { A[i] = A[i] + x }
		}
	}`)
	_, err := speccrossgen.New(p, dep, p.Loops[0], interp.NewEnv(p), 1)
	if !errors.Is(err, speccrossgen.ErrSequentialReadsParallel) {
		t.Fatalf("err = %v, want ErrSequentialReadsParallel", err)
	}
}

func TestBarrierAndSpeculativeMatchSequential(t *testing.T) {
	p, _ := compile(t, stencilSrc)
	seq, err := interp.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Checksum()

	for _, spec := range []bool{false, true} {
		p2, dep2 := compile(t, stencilSrc)
		env := interp.NewEnv(p2)
		r, err := speccrossgen.New(p2, dep2, p2.Loops[0], env, 3)
		if err != nil {
			t.Fatal(err)
		}
		if spec {
			r.RunSpeculative(speccross.Config{Workers: 3, CheckpointEvery: 4})
		} else {
			r.RunBarriers(3)
		}
		if got := env.Checksum(); got != want {
			t.Fatalf("spec=%v checksum %x != sequential %x", spec, got, want)
		}
	}
}

func TestProfileDetectsStencilDistance(t *testing.T) {
	p, dep := compile(t, stencilSrc)
	env := interp.NewEnv(p)
	r, err := speccrossgen.New(p, dep, p.Loops[0], env, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Profile(signature.Exact)
	if res.MinDistance == speccross.NoConflict {
		t.Fatal("the stencil's cross-invocation dependences must be observed")
	}
	// L2's j reads A[j-1] written by L1's iteration j-1: distance is about
	// one epoch's worth of tasks.
	if res.MinDistance < 30 || res.MinDistance > 50 {
		t.Fatalf("MinDistance = %d, want ≈40", res.MinDistance)
	}
	if len(res.PerLoop) == 0 {
		t.Fatal("per-loop distances missing")
	}
}

func TestTraceExportsInstructionCosts(t *testing.T) {
	p, dep := compile(t, stencilSrc)
	env := interp.NewEnv(p)
	r, err := speccrossgen.New(p, dep, p.Loops[0], env, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := r.Trace(10)
	if len(tr.Epochs) != r.Epochs() {
		t.Fatalf("trace epochs = %d, want %d", len(tr.Epochs), r.Epochs())
	}
	if tr.Tasks() != 12*40 {
		t.Fatalf("trace tasks = %d", tr.Tasks())
	}
	task := tr.Epochs[0].Tasks[0]
	if task.Cost <= 0 {
		t.Fatal("task cost must reflect interpreted instructions")
	}
	// L1's body reads B[i] and B[i+1] and writes A[i].
	if len(task.Reads) != 2 || len(task.Writes) != 1 {
		t.Fatalf("task accesses = %d reads / %d writes, want 2/1", len(task.Reads), len(task.Writes))
	}
	// The replay must not have mutated live program state.
	for _, v := range env.Arrays["A"] {
		if v != 0 {
			t.Fatal("trace replay mutated the live environment")
		}
	}
}

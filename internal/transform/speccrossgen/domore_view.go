package speccrossgen

import (
	"errors"
	"fmt"

	"crossinv/internal/analysis/verify"
	"crossinv/internal/ir"
	"crossinv/internal/ir/interp"
)

// This file gives a transformed Region a DOMORE face: the computeAddr slice
// of §3.3 derived by replaying each task's body on a private environment and
// recording the addresses it touches. Together with the Region's existing
// speccross.Workload implementation, the resulting DomoreView satisfies
// adaptive.Workload, so compiled LNL regions can run under the adaptive
// hybrid runtime (crossinv -engine=adaptive).

// ErrAddrDependsOnParallel reports that some address (or the control flow
// selecting which addresses are accessed) inside a parallel body depends on
// array values the parallel loops themselves write. DOMORE's scheduler must
// compute an iteration's address set before the iteration runs (§3.3.4
// aborts the transformation in this case), so such regions have no DOMORE
// view.
var ErrAddrDependsOnParallel = errors.New(
	"speccrossgen: task addresses depend on arrays written by parallel loops; no DOMORE view")

// DomoreView adapts a Region to domore.Workload while keeping the embedded
// Region's speccross.Workload methods, so it implements adaptive.Workload.
// ComputeAddr replays the task body on a private environment over a
// snapshot of the shared arrays, recording every load/store address; the
// snapshot is refreshed at each adaptive window boundary via WindowStart
// (a full-quiesce point, so the copy is race-free). NewDomoreView verifies
// statically that addresses never depend on parallel-written array values,
// which makes the replayed addresses exact regardless of snapshot age.
//
// The view drives the dedicated-scheduler engine (domore.Run): ComputeAddr
// shares one replay environment, so it is not safe for the concurrent
// scheduler replicas of domore.RunDuplicated.
type DomoreView struct {
	*Region
	addrEnv *addrReplayEnv
}

// NewDomoreView validates and wraps a transformed region. It fails with
// ErrAddrDependsOnParallel when the address computations (or branch/bound
// decisions guarding them) inside the parallel bodies read arrays those
// bodies write.
func NewDomoreView(r *Region) (*DomoreView, error) {
	if err := checkAddrIndependence(r); err != nil {
		return nil, err
	}
	v := &DomoreView{Region: r}
	v.addrEnv = newAddrReplayEnv(r)
	return v, nil
}

// Invocations implements domore.Workload; the DOMORE and SPECCROSS views of
// a region count the same inner-loop invocations.
func (v *DomoreView) Invocations() int { return v.Epochs() }

// Iterations implements domore.Workload.
func (v *DomoreView) Iterations(inv int) int { return v.Tasks(inv) }

// Sequential implements domore.Workload. The region's interleaved
// sequential code was already replayed at New time (its effects live in
// each epoch's scalar snapshot, installed by Run/ComputeAddr per task), so
// the scheduler has nothing left to execute here.
func (v *DomoreView) Sequential(inv int) {}

// Execute implements domore.Workload: run the task non-speculatively (nil
// signature — no access tracking).
func (v *DomoreView) Execute(inv, iter, tid int) { v.Run(inv, iter, tid, nil) }

// ComputeAddr implements domore.Workload by replaying the task body on the
// private environment and collecting the distinct addresses it loads or
// stores. It mutates only that private environment, so it is side-effect
// free with respect to program state, as §3.3.4 requires.
func (v *DomoreView) ComputeAddr(inv, iter int, buf []uint64) []uint64 {
	return v.addrEnv.replay(inv, iter, buf)
}

// WindowStart implements adaptive.WindowStarter: refresh the replay
// environment's array copy from the live state. All engine workers are
// quiescent at window boundaries, so the copy is race-free.
func (v *DomoreView) WindowStart(epoch int) { v.addrEnv.refresh() }

// addrReplayEnv replays task bodies on a private copy of the shared arrays
// to enumerate the addresses a task will access.
type addrReplayEnv struct {
	r   *Region
	env *interp.Env
}

func newAddrReplayEnv(r *Region) *addrReplayEnv {
	a := &addrReplayEnv{r: r, env: r.base.Fork()}
	a.refresh()
	return a
}

// refresh re-copies the live arrays into the private replay copy. Callers
// must hold a quiesce point (adaptive window boundaries qualify).
func (a *addrReplayEnv) refresh() {
	a.env.Arrays = a.r.base.Snapshot()
}

// replay executes the task body with recording hooks, appending each
// distinct touched address to buf.
func (a *addrReplayEnv) replay(inv, iter int, buf []uint64) []uint64 {
	e := a.r.epochs[inv]
	inner := a.r.Inners[e.innerIdx%len(a.r.Inners)]
	start := len(buf)
	add := func(addr uint64) {
		for _, b := range buf[start:] {
			if b == addr {
				return
			}
		}
		buf = append(buf, addr)
	}
	a.env.Hooks = interp.Hooks{OnLoad: add, OnStore: add}
	for k, v := range e.vars {
		a.env.Vars[k] = v
	}
	a.env.Vars[inner.Var] = e.lo + int64(iter)
	if err := a.env.Exec(inner.Body); err != nil {
		// The replay copy can lag the live arrays by up to a window; the
		// independence check guarantees the recorded addresses are still
		// exact, and value-dependent faults surface in Execute instead.
		_ = err
	}
	a.env.Hooks = interp.Hooks{}
	return buf
}

// checkAddrIndependence taints every register holding a value loaded from a
// parallel-written array and propagates the taint through registers and
// scalar variables to a fixpoint (the shared verify.TaintFromArrays pass,
// which the static plan verifier also uses for slice purity). If taint
// reaches an address operand (Load/Store index), a branch condition, or a
// nested loop bound inside a parallel body, the address set cannot be
// precomputed by the scheduler.
func checkAddrIndependence(r *Region) error {
	parallelWrites := map[string]bool{}
	var body []*ir.Instr
	for _, inner := range r.Inners {
		collectInstrs(inner.Body, &body)
	}
	for _, in := range body {
		if in.Op == ir.Store {
			parallelWrites[in.Array] = true
		}
	}
	if len(parallelWrites) == 0 {
		return nil
	}

	t := verify.TaintFromArrays(body, parallelWrites)
	taintReg := t.Reg

	// Address operands of every access.
	for _, in := range body {
		if (in.Op == ir.Load || in.Op == ir.Store) && taintReg[in.A] {
			return fmt.Errorf("%w (index of %s %q at %s)", ErrAddrDependsOnParallel, in.Op, in.Array, in.Pos)
		}
	}
	// Control flow selecting the accesses: If conditions and nested loop
	// bounds inside the parallel bodies.
	var ctrlErr error
	var walk func(nodes []ir.Node)
	walk = func(nodes []ir.Node) {
		for _, n := range nodes {
			if ctrlErr != nil {
				return
			}
			switch n := n.(type) {
			case *ir.Loop:
				if taintReg[n.LoReg] || taintReg[n.HiReg] {
					ctrlErr = fmt.Errorf("%w (bounds of loop %q at %s)", ErrAddrDependsOnParallel, n.Var, n.Pos)
					return
				}
				walk(n.Body)
			case *ir.If:
				if taintReg[n.CondReg] {
					ctrlErr = fmt.Errorf("%w (branch at %s)", ErrAddrDependsOnParallel, n.Pos)
					return
				}
				walk(n.Then)
				walk(n.Else)
			}
		}
	}
	for _, inner := range r.Inners {
		walk(inner.Body)
	}
	return ctrlErr
}

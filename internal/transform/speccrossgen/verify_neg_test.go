package speccrossgen_test

import (
	"testing"

	"crossinv/internal/analysis/verify"
	"crossinv/internal/diag"
	"crossinv/internal/ir"
	"crossinv/internal/lang/parser"
)

// TestVerifierCatchesDroppedInstrumentation seeds the "uninstrumented
// access" bug — a load or store removed from the signature plan, so the
// conflict checker would never see its address — and asserts the verifier
// flags the access in a SPECCROSS region.
func TestVerifierCatchesDroppedInstrumentation(t *testing.T) {
	astProg, err := parser.Parse(`func f() {
		var A[256], B[257]
		for t = 0 .. 40 {
			parfor i = 0 .. 256 {
				A[i] = B[i] * 3 + B[i+1]
			}
			parfor j = 1 .. 257 {
				B[j] = A[j-1] % 1009 + t
			}
		}
	}`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(astProg)
	if err != nil {
		t.Fatal(err)
	}
	outer := p.Loops[0]
	plan := verify.SignaturePlanFor(outer)
	if list := verify.Signatures(p, outer, plan); len(list) != 0 {
		t.Fatalf("clean region flagged:\n%s", list.Text())
	}

	c, ok := verify.CorruptDropInstrumentation(p, plan)
	if !ok {
		t.Fatal("instrumentation plan is empty")
	}
	list := verify.Signatures(p, outer, plan)
	for _, d := range list {
		if d.Severity == diag.Error && d.Check == verify.CheckSignature && d.Pos == c.Pos {
			return
		}
	}
	t.Fatalf("dropped instrumentation not flagged at %s:\n%s", c.Pos, list.Text())
}

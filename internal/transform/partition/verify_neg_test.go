package partition_test

import (
	"testing"

	"crossinv/internal/analysis/depend"
	"crossinv/internal/analysis/verify"
	"crossinv/internal/diag"
	"crossinv/internal/ir"
	"crossinv/internal/lang/parser"
	"crossinv/internal/transform/partition"
)

// TestVerifierCatchesWidenedScheduler seeds the "widened scheduler" bug —
// a worker instruction reassigned to the scheduler despite a worker-side
// dependence feeding it — and asserts the static plan verifier flags the
// partition at the corrupted instruction's source position.
func TestVerifierCatchesWidenedScheduler(t *testing.T) {
	astProg, err := parser.Parse(`func f() {
		var C[120], IDX[400]
		for i = 0 .. 40 {
			parfor j = 0 .. 100 {
				C[IDX[j]] = C[IDX[j]] * 3 + j
			}
		}
	}`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(astProg)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Compute(p, depend.Analyze(p), p.Loops[0])
	if err != nil {
		t.Fatal(err)
	}
	if list := verify.Partition(part); len(list) != 0 {
		t.Fatalf("clean partition flagged:\n%s", list.Text())
	}

	c, ok := verify.CorruptWidenScheduler(part)
	if !ok {
		t.Fatal("no worker→worker hard edge to corrupt")
	}
	list := verify.Partition(part)
	for _, d := range list {
		if d.Severity == diag.Error && d.Check == verify.CheckPartition && d.Pos == c.Pos {
			return
		}
	}
	t.Fatalf("widened scheduler not flagged at %s:\n%s", c.Pos, list.Text())
}

package partition_test

import (
	"errors"
	"testing"

	"crossinv/internal/analysis/depend"
	"crossinv/internal/ir"
	"crossinv/internal/lang/parser"
	"crossinv/internal/transform/partition"
)

func compute(t *testing.T, src string, region int) (*ir.Program, *partition.Result, error) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := ir.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	res, err := partition.Compute(p, depend.Analyze(p), p.Loops[region])
	return p, res, err
}

const cgLike = `
func cg() {
  var S[10], E[10], C[100], IDX[100]
  for i = 0 .. 10 {
    start = S[i]
    end = E[i]
    parfor j = start .. end {
      C[IDX[j]] = C[IDX[j]] + j
    }
  }
}
`

func TestCGPartition(t *testing.T) {
	p, res, err := compute(t, cgLike, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Inners) != 1 {
		t.Fatalf("inners = %d, want 1", len(res.Inners))
	}
	inner := res.Inners[0]
	if !res.WorkerBody(inner) {
		t.Fatalf("inner body not fully worker-side: %s", res.Stats())
	}
	// The start/end scalar writes must be scheduler-side.
	for _, in := range p.Instrs {
		if in.Op == ir.WriteVar {
			if res.Side[in.ID] != partition.Scheduler {
				t.Fatalf("scalar write %v on %v side", in, res.Side[in.ID])
			}
		}
		if in.Op == ir.Store && in.Array == "C" {
			if res.Side[in.ID] != partition.Worker {
				t.Fatalf("store C on %v side", res.Side[in.ID])
			}
		}
	}
	if res.Moved != 0 {
		t.Fatalf("clean pipeline should move nothing, moved %d", res.Moved)
	}
}

func TestNoParallelInner(t *testing.T) {
	_, _, err := compute(t, `func f() {
		var A[10]
		for i = 0 .. 10 { A[i] = i }
	}`, 0)
	if !errors.Is(err, partition.ErrNoParallelInner) {
		t.Fatalf("err = %v, want ErrNoParallelInner", err)
	}
}

func TestWorkerToSchedulerFlowRejected(t *testing.T) {
	// The sequential region reads B, which the worker writes: dataflow
	// worker → scheduler breaks the pipeline, the fixed point pulls the
	// whole body into the scheduler, and the partition is rejected
	// (the Fig 4.1 situation).
	_, _, err := compute(t, `func f() {
		var A[10], B[10]
		for i = 0 .. 10 {
			x = B[0]
			parfor j = 0 .. 10 { B[j] = j + x }
		}
	}`, 0)
	if !errors.Is(err, partition.ErrEmptyWorker) {
		t.Fatalf("err = %v, want ErrEmptyWorker", err)
	}
}

func TestTwoInnerLoops(t *testing.T) {
	_, res, err := compute(t, `
	func f() {
		var A[50], B[51]
		for t = 0 .. 4 {
			parfor i = 0 .. 50 { A[i] = B[i] + B[i+1] }
			parfor j = 1 .. 51 { B[j] = A[j-1] + 1 }
		}
	}`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Inners) != 2 {
		t.Fatalf("inners = %d, want 2", len(res.Inners))
	}
	for _, inner := range res.Inners {
		if !res.WorkerBody(inner) {
			t.Fatalf("inner %q body not worker-side", inner.Var)
		}
	}
}

func TestStatsString(t *testing.T) {
	_, res, err := compute(t, cgLike, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats() == "" {
		t.Fatal("empty stats")
	}
}

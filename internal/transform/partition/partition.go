// Package partition implements the DOMORE scheduler/worker partitioning of
// §3.3.1: the instructions of a candidate loop nest are split so that the
// scheduler thread owns the outer loop's sequential region and all inner
// loop traversal, workers own the inner loop bodies, and all dependences
// flow scheduler → worker (a pipeline). The split is computed as a fixed
// point over the DAG_SCC of the region PDG, ignoring loop-carried memory
// edges — those are the dependences DOMORE's runtime enforces with
// synchronization conditions instead of with the partition.
package partition

import (
	"errors"
	"fmt"

	"crossinv/internal/analysis/depend"
	"crossinv/internal/analysis/pdg"
	"crossinv/internal/analysis/scc"
	"crossinv/internal/ir"
)

// Side says which thread owns an instruction.
type Side int

// Sides.
const (
	Scheduler Side = iota
	Worker
)

// String returns the side name.
func (s Side) String() string {
	if s == Scheduler {
		return "scheduler"
	}
	return "worker"
}

// Result is a computed partition for one candidate region.
type Result struct {
	Outer *ir.Loop
	// Inners are the parallel loops whose bodies form the worker side,
	// in textual order.
	Inners []*ir.Loop
	// Side maps instruction ID → owning thread, for every instruction in
	// the region.
	Side map[int]Side
	// Graph is the region PDG the partition was computed from.
	Graph *pdg.Graph
	// Moved counts worker instructions pulled into the scheduler by the
	// fixed point (0 for cleanly pipelined programs).
	Moved int
}

// ErrNoParallelInner reports a region without any parfor child.
var ErrNoParallelInner = errors.New("partition: region has no parallel inner loop")

// ErrEmptyWorker reports that the fixed point moved every instruction to
// the scheduler: the region has worker→scheduler dataflow and DOMORE is
// inapplicable (the Fig 4.1 situation).
var ErrEmptyWorker = errors.New("partition: worker partition is empty; DOMORE inapplicable")

// Compute partitions the region rooted at outer.
func Compute(p *ir.Program, dep *depend.Result, outer *ir.Loop) (*Result, error) {
	var inners []*ir.Loop
	for _, n := range outer.Body {
		if l, ok := n.(*ir.Loop); ok && l.Parallel {
			inners = append(inners, l)
		}
	}
	if len(inners) == 0 {
		return nil, ErrNoParallelInner
	}

	g := pdg.Build(p, dep, outer)
	res := &Result{Outer: outer, Inners: inners, Side: map[int]Side{}, Graph: g}

	// Initial assignment: inner-loop bodies → worker; everything else in
	// the region (sequential code, inner loop bounds — the "loop-traversal
	// instructions" of §3.3.1) → scheduler.
	workerSet := map[int]bool{}
	for _, inner := range inners {
		markBody(inner.Body, workerSet)
	}
	for _, id := range g.Nodes {
		if workerSet[id] {
			res.Side[id] = Worker
		} else {
			res.Side[id] = Scheduler
		}
	}

	// SCC over the PDG without loop-carried memory edges (they are
	// enforced at runtime by the scheduler's shadow memory).
	sccGraph := g.ToSCCGraph(true)
	comps := scc.Tarjan(sccGraph)
	dag := scc.Condense(sccGraph, comps)

	side := make([]Side, comps.NumComponents())
	for c := range side {
		side[c] = Worker
	}
	for _, id := range g.Nodes {
		if res.Side[id] == Scheduler {
			side[comps.Comp[g.Index[id]]] = Scheduler
		}
	}

	// Fixed point: a worker component with an edge into a scheduler
	// component violates the pipeline (values would flow worker →
	// scheduler); re-partition it to the scheduler and repeat (§3.3.1
	// step 2).
	for changed := true; changed; {
		changed = false
		for u := 0; u < dag.N(); u++ {
			if side[u] != Worker {
				continue
			}
			for _, v := range dag.Succs(u) {
				if side[v] == Scheduler {
					side[u] = Scheduler
					changed = true
					break
				}
			}
		}
	}

	workerCount := 0
	for _, id := range g.Nodes {
		c := comps.Comp[g.Index[id]]
		newSide := side[c]
		if res.Side[id] == Worker && newSide == Scheduler {
			res.Moved++
		}
		res.Side[id] = newSide
		if newSide == Worker {
			workerCount++
		}
	}
	if workerCount == 0 {
		return nil, ErrEmptyWorker
	}
	return res, nil
}

func markBody(nodes []ir.Node, set map[int]bool) {
	for _, n := range nodes {
		switch n := n.(type) {
		case *ir.Instr:
			set[n.ID] = true
		case *ir.Loop:
			for _, in := range n.Lo {
				set[in.ID] = true
			}
			for _, in := range n.Hi {
				set[in.ID] = true
			}
			markBody(n.Body, set)
		case *ir.If:
			for _, in := range n.Cond {
				set[in.ID] = true
			}
			markBody(n.Then, set)
			markBody(n.Else, set)
		}
	}
}

// WorkerBody reports whether every instruction of the given inner loop's
// body stayed in the worker partition (i.e. the loop parallelizes cleanly).
func (r *Result) WorkerBody(inner *ir.Loop) bool {
	ok := true
	var check func(nodes []ir.Node)
	check = func(nodes []ir.Node) {
		for _, n := range nodes {
			switch n := n.(type) {
			case *ir.Instr:
				if r.Side[n.ID] != Worker {
					ok = false
				}
			case *ir.Loop:
				check(n.Body)
			case *ir.If:
				check(n.Then)
				check(n.Else)
			}
		}
	}
	check(inner.Body)
	return ok
}

// Stats summarizes the partition for reports.
func (r *Result) Stats() string {
	s, w := 0, 0
	for _, side := range r.Side {
		if side == Scheduler {
			s++
		} else {
			w++
		}
	}
	return fmt.Sprintf("scheduler=%d worker=%d moved=%d", s, w, r.Moved)
}

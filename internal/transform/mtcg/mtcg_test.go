package mtcg_test

import (
	"errors"
	"testing"

	"crossinv/internal/analysis/depend"
	"crossinv/internal/ir"
	"crossinv/internal/ir/interp"
	"crossinv/internal/lang/parser"
	"crossinv/internal/runtime/domore"
	"crossinv/internal/transform/mtcg"
	"crossinv/internal/transform/partition"
	"crossinv/internal/transform/slice"
)

func transform(t *testing.T, src string, regionIdx int) (*ir.Program, *mtcg.Parallelized, error) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := ir.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	par, err := mtcg.Transform(p, depend.Analyze(p), p.Loops[regionIdx], slice.Options{})
	return p, par, err
}

const cgSrc = `
func cg() {
  var S[20], E[20], C[60], IDX[200]
  parfor z = 0 .. 200 { IDX[z] = z * 13 % 60 }
  for i = 0 .. 20 {
    start = i * 10 % 191
    end = start + 9
    parfor j = start .. end {
      C[IDX[j]] = C[IDX[j]] * 3 + j
    }
  }
}
`

func TestTransformCG(t *testing.T) {
	_, par, err := transform(t, cgSrc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Part.Inners) != 1 {
		t.Fatalf("inners = %d", len(par.Part.Inners))
	}
	inner := par.Part.Inners[0]
	ca := par.Slices[inner]
	if ca == nil {
		t.Fatal("no computeAddr slice generated")
	}
	// Live-ins of the inner body: none beyond the induction variable (the
	// bounds feed the loop header, not the body).
	if len(par.LiveIns[inner]) != 0 {
		t.Fatalf("liveIns = %v, want none", par.LiveIns[inner])
	}
}

func TestLiveInsForwarded(t *testing.T) {
	_, par, err := transform(t, `
	func f() {
		var A[100]
		for t = 0 .. 5 {
			bias = t * 7
			parfor i = 0 .. 100 { A[i] = i + bias }
		}
	}`, 0)
	if err != nil {
		t.Fatal(err)
	}
	inner := par.Part.Inners[0]
	if len(par.LiveIns[inner]) != 1 || par.LiveIns[inner][0] != "bias" {
		t.Fatalf("liveIns = %v, want [bias]", par.LiveIns[inner])
	}
}

func TestRunMatchesSequentialWithLiveIns(t *testing.T) {
	src := `
	func f() {
		var A[100]
		for t = 0 .. 8 {
			bias = t * 7 % 13
			parfor i = 0 .. 100 { A[i] = A[i] * 3 + i + bias }
		}
	}`
	prog, _ := parser.Parse(src)
	p, _ := ir.Lower(prog)
	seq, err := interp.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	want := seq.Checksum()

	par, err := mtcg.Transform(p, depend.Analyze(p), p.Loops[0], slice.Options{})
	if err != nil {
		t.Fatal(err)
	}
	env := interp.NewEnv(p)
	if _, err := par.Run(env, domore.Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if got := env.Checksum(); got != want {
		t.Fatalf("checksum %x != sequential %x", got, want)
	}
}

func TestTailSequentialCodeRuns(t *testing.T) {
	// Sequential code after the last inner loop must execute once per
	// outer iteration, including the final one (Finish's job).
	src := `
	func f() {
		var A[50], T[10]
		for t = 0 .. 10 {
			parfor i = 0 .. 50 { A[i] = A[i] + i + t }
			T[t] = t * 2
		}
	}`
	prog, _ := parser.Parse(src)
	p, _ := ir.Lower(prog)
	seq, _ := interp.Run(p)
	want := seq.Checksum()

	par, err := mtcg.Transform(p, depend.Analyze(p), p.Loops[0], slice.Options{})
	if err != nil {
		t.Fatal(err)
	}
	env := interp.NewEnv(p)
	if _, err := par.Run(env, domore.Options{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	if got := env.Checksum(); got != want {
		t.Fatalf("checksum %x != sequential %x (tail statements lost?)", got, want)
	}
	for i := int64(0); i < 10; i++ {
		if env.Arrays["T"][i] != 2*i {
			t.Fatalf("T[%d] = %d, want %d", i, env.Arrays["T"][i], 2*i)
		}
	}
}

func TestTransformRejectsWorkerToSchedulerFlow(t *testing.T) {
	_, _, err := transform(t, `
	func f() {
		var A[10], B[10]
		for i = 0 .. 10 {
			x = B[0]
			parfor j = 0 .. 10 { B[j] = j + x }
		}
	}`, 0)
	if !errors.Is(err, partition.ErrEmptyWorker) {
		t.Fatalf("err = %v, want ErrEmptyWorker", err)
	}
}

func TestTransformRejectsHeavySlice(t *testing.T) {
	prog, _ := parser.Parse(`
	func f() {
		var A[1000], IDX[1000]
		for t = 0 .. 4 {
			parfor i = 0 .. 100 { A[IDX[i] * 7 % 1000] = 1 }
		}
	}`)
	p, _ := ir.Lower(prog)
	_, err := mtcg.Transform(p, depend.Analyze(p), p.Loops[0], slice.Options{MaxWeight: 0.4})
	if !errors.Is(err, slice.ErrTooHeavy) {
		t.Fatalf("err = %v, want ErrTooHeavy", err)
	}
}

func TestOOBInRegionSurfacesAsError(t *testing.T) {
	src := `
	func f() {
		var A[5]
		for t = 0 .. 3 {
			parfor i = 0 .. 10 { A[i] = i }
		}
	}`
	prog, _ := parser.Parse(src)
	p, _ := ir.Lower(prog)
	par, err := mtcg.Transform(p, depend.Analyze(p), p.Loops[0], slice.Options{})
	if err != nil {
		t.Fatal(err)
	}
	env := interp.NewEnv(p)
	if _, err := par.Run(env, domore.Options{Workers: 2}); err == nil {
		t.Fatal("out-of-bounds store must surface as an error")
	}
}

package mtcg_test

import (
	"testing"

	"crossinv/internal/analysis/depend"
	"crossinv/internal/analysis/verify"
	"crossinv/internal/diag"
	"crossinv/internal/ir"
	"crossinv/internal/lang/parser"
	"crossinv/internal/transform/mtcg"
	"crossinv/internal/transform/slice"
)

func transformStencil(t *testing.T) *mtcg.Parallelized {
	t.Helper()
	astProg, err := parser.Parse(`func f() {
		var A[256], B[257]
		for t = 0 .. 40 {
			parfor i = 0 .. 256 {
				A[i] = B[i] * 3 + B[i+1]
			}
			parfor j = 1 .. 257 {
				B[j] = A[j-1] % 1009 + t
			}
		}
	}`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Lower(astProg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := mtcg.Transform(p, depend.Analyze(p), p.Loops[0], slice.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return par
}

func wantMTCGError(t *testing.T, par *mtcg.Parallelized, c verify.Corruption) {
	t.Helper()
	list := verify.MTCG(par)
	for _, d := range list {
		if d.Severity == diag.Error && d.Check == verify.CheckMTCG && d.Pos == c.Pos {
			return
		}
	}
	t.Fatalf("corruption %q not flagged at %s:\n%s", c.Name, c.Pos, list.Text())
}

// TestVerifierCatchesDroppedProduce seeds the "dropped produce" bug — a
// live-in the scheduler never forwards (here the timestep scalar t) — and
// asserts the verifier reports the read that would see a stale value.
func TestVerifierCatchesDroppedProduce(t *testing.T) {
	par := transformStencil(t)
	if list := verify.MTCG(par); len(list) != 0 {
		t.Fatalf("clean transform flagged:\n%s", list.Text())
	}
	c, ok := verify.CorruptDropLiveIn(par)
	if !ok {
		t.Fatal("no live-in to drop")
	}
	wantMTCGError(t, par, c)
}

// TestVerifierCatchesDuplicateProduce seeds a live-in forwarded twice,
// which would give its queue two producers (SPSC violation).
func TestVerifierCatchesDuplicateProduce(t *testing.T) {
	par := transformStencil(t)
	c, ok := verify.CorruptDuplicateLiveIn(par)
	if !ok {
		t.Fatal("no live-in to duplicate")
	}
	wantMTCGError(t, par, c)
}

// Package mtcg performs multi-threaded code generation for DOMORE
// (§3.3.2, Algorithm 4): given a partitioned loop nest and its computeAddr
// slices, it produces an executable scheduler/worker program — realized as
// a domore.Workload over the IR interpreter — in which the scheduler thread
// runs the outer loop's sequential region, redundantly evaluates the
// address slices, and dispatches inner-loop iterations to workers, with all
// live-in values flowing scheduler → worker exactly once per invocation
// (the produce/consume placement of Fig 3.7).
package mtcg

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"crossinv/internal/analysis/depend"
	"crossinv/internal/ir"
	"crossinv/internal/ir/interp"
	"crossinv/internal/runtime/domore"
	"crossinv/internal/transform/partition"
	"crossinv/internal/transform/slice"
)

// ErrMixedBody reports that the partitioner pulled part of an inner loop
// body into the scheduler; this generator only emits cleanly pipelined
// regions.
var ErrMixedBody = errors.New("mtcg: inner loop body not fully in worker partition")

// Parallelized is a DOMORE-transformed region, ready to Bind to program
// state and execute.
type Parallelized struct {
	Prog   *ir.Program
	Outer  *ir.Loop
	Part   *partition.Result
	Slices map[*ir.Loop]*slice.ComputeAddr
	// LiveIns lists, per inner loop, the scalar names its body reads that
	// the scheduler must forward (the loop live-ins of §3.3.2 step 4,
	// excluding the induction variable).
	LiveIns map[*ir.Loop][]string
}

// Transform partitions the region at outer and generates its computeAddr
// slices. It fails where the paper's transformation aborts: no parallel
// inner loop, empty worker partition, side-effecting or too-heavy slices.
func Transform(p *ir.Program, dep *depend.Result, outer *ir.Loop, sliceOpts slice.Options) (*Parallelized, error) {
	part, err := partition.Compute(p, dep, outer)
	if err != nil {
		return nil, err
	}
	for _, inner := range part.Inners {
		if !part.WorkerBody(inner) {
			return nil, fmt.Errorf("%w: loop %q", ErrMixedBody, inner.Var)
		}
	}
	workerWrites := map[string]bool{}
	for _, in := range p.Instrs {
		if in.Op == ir.Store && part.Side[in.ID] == partition.Worker {
			workerWrites[in.Array] = true
		}
	}
	par := &Parallelized{
		Prog: p, Outer: outer, Part: part,
		Slices:  map[*ir.Loop]*slice.ComputeAddr{},
		LiveIns: map[*ir.Loop][]string{},
	}
	for _, inner := range part.Inners {
		ca, err := slice.Generate(p, dep, inner, workerWrites, sliceOpts)
		if err != nil {
			return nil, err
		}
		par.Slices[inner] = ca
		par.LiveIns[inner] = liveIns(inner)
	}
	return par, nil
}

// liveIns collects the scalar names read in the loop body, excluding the
// loop's own induction variable and scalars defined earlier in the body.
func liveIns(inner *ir.Loop) []string {
	defined := map[string]bool{inner.Var: true}
	seen := map[string]bool{}
	var names []string
	var walk func(nodes []ir.Node)
	walk = func(nodes []ir.Node) {
		for _, n := range nodes {
			switch n := n.(type) {
			case *ir.Instr:
				switch n.Op {
				case ir.ReadVar:
					if !defined[n.Var] && !seen[n.Var] {
						seen[n.Var] = true
						names = append(names, n.Var)
					}
				case ir.WriteVar:
					defined[n.Var] = true
				}
			case *ir.Loop:
				for _, in := range append(append([]*ir.Instr{}, n.Lo...), n.Hi...) {
					if in.Op == ir.ReadVar && !defined[in.Var] && !seen[in.Var] {
						seen[in.Var] = true
						names = append(names, in.Var)
					}
				}
				defined[n.Var] = true
				walk(n.Body)
			case *ir.If:
				for _, in := range n.Cond {
					if in.Op == ir.ReadVar && !defined[in.Var] && !seen[in.Var] {
						seen[in.Var] = true
						names = append(names, in.Var)
					}
				}
				walk(n.Then)
				walk(n.Else)
			}
		}
	}
	walk(inner.Body)
	return names
}

// invocation is the per-invocation record the scheduler publishes to
// workers: which inner loop, its bounds, and the live-in scalar values.
type invocation struct {
	inner   *ir.Loop
	lo, hi  int64
	liveIns map[string]int64
}

// workload adapts the transformed region to domore.Workload.
type workload struct {
	par     *Parallelized
	sched   *interp.Env
	workers []*interp.Env
	// segments[i] holds the scheduler-side nodes preceding inner loop i in
	// the outer body; tail holds nodes after the last inner loop.
	segments [][]ir.Node
	tail     []ir.Node
	outerLo  int64
	outerN   int64
	invs     []invocation
	addrBuf  []uint64

	errMu sync.Mutex
	err   error // first execution error (read via Err/Finish)
	bad   atomic.Bool
}

// failed reports whether any error has been recorded (cheap, lock-free).
func (w *workload) failed() bool { return w.bad.Load() }

// Bind prepares the region to run against env's state with the given
// number of workers. Call domore.Run (or RunDuplicated) with the returned
// workload, then Finish to execute the outer loop's trailing sequential
// code and collect any execution error.
func (par *Parallelized) Bind(env *interp.Env, workers int) (*workload, error) {
	w := &workload{par: par, sched: env}
	for i := 0; i < workers; i++ {
		w.workers = append(w.workers, env.Fork())
	}

	// Split the outer body into scheduler segments around the inner loops.
	var cur []ir.Node
	for _, n := range par.Outer.Body {
		if l, ok := n.(*ir.Loop); ok && par.Slices[l] != nil {
			w.segments = append(w.segments, cur)
			cur = nil
			continue
		}
		cur = append(cur, n)
	}
	w.tail = cur

	lo, hi, err := env.LoopBounds(par.Outer)
	if err != nil {
		return nil, err
	}
	w.outerLo = lo
	if hi > lo {
		w.outerN = hi - lo
	}
	w.invs = make([]invocation, w.Invocations())
	return w, nil
}

// Invocations implements domore.Workload.
func (w *workload) Invocations() int {
	return int(w.outerN) * len(w.segments)
}

// Sequential implements domore.Workload: it advances the outer loop to the
// invocation's iteration, executes the scheduler segment preceding the
// inner loop (plus the previous iteration's tail), evaluates the inner
// bounds, and snapshots the live-ins workers will need.
func (w *workload) Sequential(inv int) {
	if w.failed() {
		return
	}
	k := len(w.segments)
	outerIter := inv / k
	innerIdx := inv % k
	if innerIdx == 0 {
		if outerIter > 0 {
			if err := w.sched.Exec(w.tail); err != nil {
				w.fail(err)
				return
			}
		}
		w.sched.Vars[w.par.Outer.Var] = w.outerLo + int64(outerIter)
	}
	if err := w.sched.Exec(w.segments[innerIdx]); err != nil {
		w.fail(err)
		return
	}
	inner := w.par.Part.Inners[innerIdx]
	lo, hi, err := w.sched.LoopBounds(inner)
	if err != nil {
		w.fail(err)
		return
	}
	rec := invocation{inner: inner, lo: lo, hi: hi, liveIns: map[string]int64{}}
	for _, name := range w.par.LiveIns[inner] {
		rec.liveIns[name] = w.sched.Vars[name]
	}
	w.invs[inv] = rec
}

// Finish executes the trailing sequential code of the final outer iteration
// and reports the first error encountered anywhere in the region.
func (w *workload) Finish() error {
	if !w.failed() && w.outerN > 0 {
		w.sched.Vars[w.par.Outer.Var] = w.outerLo + w.outerN - 1
		if err := w.sched.Exec(w.tail); err != nil {
			w.fail(err)
		}
	}
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.err
}

func (w *workload) fail(err error) {
	w.errMu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.errMu.Unlock()
	w.bad.Store(true)
}

// Iterations implements domore.Workload.
func (w *workload) Iterations(inv int) int {
	if w.failed() {
		return 0
	}
	rec := w.invs[inv]
	if rec.hi <= rec.lo {
		return 0
	}
	return int(rec.hi - rec.lo)
}

// ComputeAddr implements domore.Workload: it interprets the generated
// slice on the scheduler's environment. Address computations hoisted out
// of untaken branches may index out of bounds; those addresses are
// skipped — an overapproximation-tolerant scheduler never misses a real
// address because every actually-executed access is in the slice.
func (w *workload) ComputeAddr(inv, iter int, buf []uint64) []uint64 {
	if w.failed() {
		return nil
	}
	_ = buf // the interpreter-backed slice owns its own result registers
	rec := w.invs[inv]
	ca := w.par.Slices[rec.inner]
	w.sched.Vars[rec.inner.Var] = rec.lo + int64(iter)
	for _, in := range ca.Instrs {
		if err := w.sched.Step(in); err != nil {
			var oob *interp.OOBError
			if errors.As(err, &oob) {
				continue
			}
			w.fail(err)
			return nil
		}
	}
	w.addrBuf = w.addrBuf[:0]
	for id, reg := range ca.AddrOf {
		in := w.par.Prog.Instrs[id]
		idx := w.sched.Regs[reg]
		if idx < 0 || idx >= w.par.Prog.Arrays[in.Array] {
			continue
		}
		addr := w.par.Prog.Addr(in.Array, idx)
		dup := false
		for _, a := range w.addrBuf {
			if a == addr {
				dup = true
				break
			}
		}
		if !dup {
			w.addrBuf = append(w.addrBuf, addr)
		}
	}
	return w.addrBuf
}

// Execute implements domore.Workload: run one inner-loop iteration on the
// worker's private environment, with live-ins installed.
func (w *workload) Execute(inv, iter, tid int) {
	if w.failed() {
		return
	}
	rec := w.invs[inv]
	env := w.workers[tid]
	for name, v := range rec.liveIns {
		env.Vars[name] = v
	}
	env.Vars[rec.inner.Var] = rec.lo + int64(iter)
	if err := env.Exec(rec.inner.Body); err != nil {
		w.fail(err)
	}
}

// Run executes the transformed region against env using the DOMORE runtime
// and returns the engine statistics.
func (par *Parallelized) Run(env *interp.Env, opts domore.Options) (domore.Stats, error) {
	w, err := par.Bind(env, opts.Workers)
	if err != nil {
		return domore.Stats{}, err
	}
	stats := domore.Run(w, opts)
	return stats, w.Finish()
}

// RunSharded is Run on the sharded scheduler (domore.RunSharded). The
// interpreter-backed ComputeAddr replays region code against the shared
// scheduler environment, so it is not safe to call from concurrent lanes;
// ConcurrentAddr is forced off and the driver sources addresses serially,
// leaving the lanes the sharded dependence detection.
func (par *Parallelized) RunSharded(env *interp.Env, opts domore.Options) (domore.Stats, error) {
	w, err := par.Bind(env, opts.Workers)
	if err != nil {
		return domore.Stats{}, err
	}
	opts.ConcurrentAddr = false
	stats := domore.RunSharded(w, opts)
	return stats, w.Finish()
}

package advisor_test

import (
	"strings"
	"testing"

	"crossinv/internal/analysis/depend"
	"crossinv/internal/ir"
	"crossinv/internal/lang/parser"
	"crossinv/internal/transform/advisor"
)

func advise(t *testing.T, src string, loopIdx int) advisor.Recommendation {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := ir.Lower(prog)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return advisor.Advise(p, depend.Analyze(p), p.Loops[loopIdx])
}

func TestDOALLLoop(t *testing.T) {
	// Fig 2.3(a): independent iterations.
	rec := advise(t, `func f() {
		var A[100], B[101]
		for i = 0 .. 100 { A[i] = B[i] + B[i+1] }
	}`, 0)
	if rec.Plan != advisor.DOALL {
		t.Fatalf("plan = %v (%s), want DOALL", rec.Plan, rec.Reason)
	}
}

func TestPipelineLoop(t *testing.T) {
	// The Fig 2.4 shape: a traversal recurrence (node = next[node]) feeding
	// an accumulation (cost += doit(node)) — two dependence cycles that
	// form a two-stage pipeline.
	rec := advise(t, `func f() {
		var NEXT[100], D[100]
		node = 0
		cost = 0
		for i = 0 .. 50 {
			cost = cost + D[node]
			node = NEXT[node] % 100
		}
	}`, 0)
	if rec.Plan != advisor.DSWP {
		t.Fatalf("plan = %v (%s), want DSWP", rec.Plan, rec.Reason)
	}
	if rec.Stages < 2 {
		t.Fatalf("stages = %d, want at least 2 (traverse | accumulate)", rec.Stages)
	}
}

func TestSingleSCCNeedsSpeculation(t *testing.T) {
	// The Fig 2.6 shape: the accumulated value feeds the traversal, so the
	// whole body is one strongly connected component.
	rec := advise(t, `func f() {
		var NEXT[100], D[100]
		node = 0
		cost = 0
		for i = 0 .. 50 {
			cost = cost + D[node]
			node = (NEXT[node] + cost) % 100
		}
	}`, 0)
	if rec.Plan != advisor.Speculative {
		t.Fatalf("plan = %v (%s), want speculative", rec.Plan, rec.Reason)
	}
	// The cycle spans everything except standalone constants.
	if rec.LargestSCC*10 < rec.Nodes*8 {
		t.Fatalf("largest SCC %d of %d nodes; expected a near-spanning cycle", rec.LargestSCC, rec.Nodes)
	}
}

func TestRecurrenceIsNotDOALL(t *testing.T) {
	rec := advise(t, `func f() {
		var A[101]
		for i = 0 .. 100 { A[i+1] = A[i] + 1 }
	}`, 0)
	if rec.Plan == advisor.DOALL {
		t.Fatalf("distance-1 recurrence classified DOALL (%s)", rec.Reason)
	}
}

func TestPlanNamesAndReasons(t *testing.T) {
	for _, p := range []advisor.Plan{advisor.DOALL, advisor.DSWP, advisor.DOACROSS, advisor.Speculative} {
		if strings.HasPrefix(p.String(), "Plan(") {
			t.Fatalf("plan %d unnamed", int(p))
		}
	}
	rec := advise(t, `func f() {
		var A[4]
		for i = 0 .. 4 { A[i] = i }
	}`, 0)
	if rec.Reason == "" {
		t.Fatal("empty reason")
	}
}

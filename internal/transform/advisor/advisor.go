// Package advisor classifies loops by the intra-invocation parallelization
// techniques of Chapter 2: DOALL when no dependence crosses iterations,
// DSWP/DOACROSS when dependence cycles exist but the DAG_SCC still has
// parallel structure (Figs 2.4–2.5), and speculation (TLS / SpecDSWP,
// Fig 2.8) when a single strongly connected component swallows the whole
// body (Fig 2.6). The crossinv pipeline uses parfor annotations plus
// ClassifyParallel for its own decisions; this advisor reports what the
// paper's survey of prior techniques would do with a loop, for diagnostics
// and for the Table 5.1 "parallelization plan" column.
package advisor

import (
	"fmt"

	"crossinv/internal/analysis/depend"
	"crossinv/internal/analysis/pdg"
	"crossinv/internal/analysis/scc"
	"crossinv/internal/ir"
)

// Plan is a recommended intra-invocation parallelization technique.
type Plan int

// Plans, in decreasing order of expected scalability.
const (
	// DOALL: iterations are independent (Fig 2.3(a)).
	DOALL Plan = iota
	// DSWP: dependence cycles exist but the condensation has several
	// components, so the body pipelines across threads (Fig 2.5(b)).
	DSWP
	// DOACROSS: cycles exist and the condensation is shallow; iterations
	// interleave with cross-thread synchronization (Fig 2.5(a)).
	DOACROSS
	// Speculative: one SCC spans the whole body; only speculation (TLS /
	// SpecDSWP, Fig 2.8) can extract parallelism.
	Speculative
)

// String returns the plan name as the paper spells it.
func (p Plan) String() string {
	switch p {
	case DOALL:
		return "DOALL"
	case DSWP:
		return "DSWP"
	case DOACROSS:
		return "DOACROSS"
	case Speculative:
		return "speculative (TLS/SpecDSWP)"
	default:
		return fmt.Sprintf("Plan(%d)", int(p))
	}
}

// Recommendation is the advisor's output for one loop.
type Recommendation struct {
	Plan Plan
	// Stages is the DSWP pipeline depth (number of DAG_SCC components),
	// meaningful for DSWP and DOACROSS.
	Stages int
	// LargestSCC is the size (in instructions) of the biggest component.
	LargestSCC int
	// Nodes is the PDG node count.
	Nodes int
	// Reason explains the classification.
	Reason string
}

// Advise classifies the loop.
func Advise(p *ir.Program, dep *depend.Result, loop *ir.Loop) Recommendation {
	g := pdg.Build(p, dep, loop)

	carried := false
	for _, e := range g.Edges {
		if e.LoopCarried {
			carried = true
			break
		}
	}
	if !carried {
		return Recommendation{
			Plan:   DOALL,
			Stages: 1,
			Nodes:  len(g.Nodes),
			Reason: "no loop-carried dependences: iterations are independent",
		}
	}

	// Include every edge (carried ones too): SCCs over this graph are the
	// units that must stay together or serialize (Fig 3.6(c)).
	comps := scc.Tarjan(g.ToSCCGraph(false))
	largest := 0
	for _, ms := range comps.Members {
		if len(ms) > largest {
			largest = len(ms)
		}
	}
	n := len(g.Nodes)
	switch {
	case n > 0 && largest*10 >= n*8: // a cycle spans (almost) the whole body
		return Recommendation{
			Plan: Speculative, Stages: 1, LargestSCC: largest, Nodes: n,
			Reason: "a single dependence cycle spans the body (the Fig 2.6 shape); " +
				"DSWP has one stage and DOACROSS's cycle height equals the iteration",
		}
	case comps.NumComponents() > 1:
		return Recommendation{
			Plan: DSWP, Stages: comps.NumComponents(), LargestSCC: largest, Nodes: n,
			Reason: fmt.Sprintf("%d DAG_SCC components form a pipeline; DOACROSS also applies "+
				"with synchronization on the %d-instruction cycle", comps.NumComponents(), largest),
		}
	default:
		return Recommendation{
			Plan: DOACROSS, Stages: 1, LargestSCC: largest, Nodes: n,
			Reason: "cycles dominate but do not span the body",
		}
	}
}
